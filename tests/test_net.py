"""Tests for the network serving tier (protocol, shm transport, servers,
autoscaler) and the cluster lifecycle satellites that ride along with it."""

from __future__ import annotations

import json
import socket
import struct
import threading
import urllib.error
import urllib.request
from dataclasses import asdict

import numpy as np
import pytest

from repro import create_estimator
from repro.cli import main
from repro.cluster import (
    ClusterClosedError,
    ClusterConfig,
    ClusterOverloadedError,
    EstimationCluster,
)
from repro.estimator import UpdateNotSupportedError
from repro.net import (
    Autoscaler,
    AutoscalerConfig,
    BinaryClient,
    HttpClient,
    ShardCrashedError,
    ShmRing,
    SlotPool,
    build_server,
    protocol,
    run_saturation_benchmark,
    report_as_dict,
    SaturationScenario,
)
from repro.inference.precision import DEFAULT_ERROR_BUDGETS, relative_deviation
from repro.net.shm import batch_nbytes


@pytest.fixture(scope="module")
def kde_model_dir(tiny_cosine_split, tmp_path_factory):
    """One fitted KDE saved under a model directory, for disk-backed shards."""
    directory = tmp_path_factory.mktemp("net-models")
    kde = create_estimator("kde", num_samples=64, seed=0).fit(tiny_cosine_split)
    kde.save(directory / "kde", metadata={"setting": "face-cos", "scale": "tiny", "seed": 0})
    return directory


@pytest.fixture(scope="module")
def fitted_kde(tiny_cosine_split):
    return create_estimator("kde", num_samples=64, seed=0).fit(tiny_cosine_split)


@pytest.fixture(scope="module")
def net_server(kde_model_dir):
    """One running HTTP + binary server over two network-backend shards."""
    server = build_server(
        kde_model_dir, port=0, binary_port=0, num_shards=2, backend="network"
    )
    server.start()
    yield server
    server.stop()


# ---------------------------------------------------------------------- #
# Wire protocol
# ---------------------------------------------------------------------- #
class TestProtocol:
    def test_estimate_request_roundtrip_is_bit_identical(self, rng):
        queries = rng.standard_normal((7, 5))
        thresholds = rng.standard_normal(7)
        payload = protocol.pack_estimate_request("kde", queries, thresholds, use_cache=False)
        op, fields = protocol.parse_request(payload)
        assert op == protocol.OP_ESTIMATE
        assert fields["model"] == "kde"
        assert fields["use_cache"] is False
        np.testing.assert_array_equal(fields["queries"], queries)
        np.testing.assert_array_equal(fields["thresholds"], thresholds)

    def test_float32_request_halves_the_batch_bytes(self, rng):
        queries = rng.standard_normal((5, 3))
        thresholds = rng.standard_normal(5)
        wide = protocol.pack_estimate_request("kde", queries, thresholds)
        narrow = protocol.pack_estimate_request("kde", queries, thresholds, dtype="float32")
        assert len(wide) - len(narrow) == 5 * (3 + 1) * 4  # n * (dim + 1) * 4 B saved
        op, fields = protocol.parse_request(narrow)
        assert op == protocol.OP_ESTIMATE
        assert fields["dtype"] == "float32"
        np.testing.assert_array_equal(fields["queries"], queries.astype(np.float32))
        np.testing.assert_array_equal(fields["thresholds"], thresholds.astype(np.float32))
        # default requests never carry the flag, so pre-dtype peers parse unchanged
        assert not protocol.parse_request(wide)[1]["dtype"] == "float32"
        with pytest.raises(ValueError, match="wire dtype"):
            protocol.pack_estimate_request("kde", queries, thresholds, dtype="float16")

    def test_estimate_request_rejects_misaligned_batch(self, rng):
        with pytest.raises(ValueError):
            protocol.pack_estimate_request(
                "kde", rng.standard_normal((4, 3)), rng.standard_normal(5)
            )

    def test_control_requests(self):
        for op in (protocol.OP_STATS, protocol.OP_MODELS, protocol.OP_RELOAD, protocol.OP_PING):
            parsed_op, fields = protocol.parse_request(protocol.pack_control_request(op))
            assert parsed_op == op and fields is None
        with pytest.raises(ValueError):
            protocol.pack_control_request(protocol.OP_ESTIMATE)

    def test_results_response_roundtrip(self, rng):
        results = rng.standard_normal(9)
        decoded = protocol.parse_response(protocol.pack_results_response(results))
        np.testing.assert_array_equal(decoded, results)

    def test_json_response_roundtrip(self):
        value = {"ok": True, "models": ["kde"], "count": 3}
        assert protocol.parse_response(protocol.pack_json_response(value)) == value

    def test_error_response_carries_the_exception_kind(self):
        payload = protocol.pack_error_response(ClusterOverloadedError("queue full"))
        with pytest.raises(protocol.RemoteError) as info:
            protocol.parse_response(payload)
        assert info.value.kind == "ClusterOverloadedError"
        assert "queue full" in str(info.value)

    def test_framing_over_a_real_socket(self):
        left, right = socket.socketpair()
        try:
            protocol.write_frame(left, b"hello")
            protocol.write_frame(left, b"")
            assert protocol.read_frame(right) == b"hello"
            assert protocol.read_frame(right) == b""
            left.close()
            assert protocol.read_frame(right) is None  # clean EOF
        finally:
            right.close()

    def test_bad_magic_is_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"XX" + struct.pack(">I", 0))
            with pytest.raises(protocol.ProtocolError, match="magic"):
                protocol.read_frame(right)
        finally:
            left.close()
            right.close()


# ---------------------------------------------------------------------- #
# Shared-memory transport
# ---------------------------------------------------------------------- #
class TestShmRing:
    def test_batch_roundtrip_through_an_attached_mapping(self, rng):
        queries = rng.standard_normal((6, 4))
        thresholds = rng.standard_normal(6)
        ring = ShmRing.create(num_slots=2, slot_bytes=4096)
        try:
            ring.write_batch(1, queries, thresholds)
            other = ShmRing.attach(ring.name, 2, 4096)  # the worker's view
            try:
                got_q, got_t = other.read_batch(1, 6, 4)
                np.testing.assert_array_equal(got_q, queries)
                np.testing.assert_array_equal(got_t, thresholds)
                results = rng.standard_normal(6)
                other.write_results(1, results)
                del got_q, got_t  # views pin the mapping; drop before close
            finally:
                other.close()
            np.testing.assert_array_equal(ring.read_results(1, 6), results)
        finally:
            ring.close()

    def test_float32_batch_roundtrip_in_half_the_slot_bytes(self, rng):
        """A float32 batch occupies half the slot bytes and round-trips
        bit-identically; result slots stay float64 regardless."""
        queries = rng.standard_normal((6, 4)).astype(np.float32)
        thresholds = rng.standard_normal(6).astype(np.float32)
        slot = batch_nbytes(6, 4, itemsize=4)
        assert slot == batch_nbytes(6, 4) // 2
        ring = ShmRing.create(num_slots=1, slot_bytes=slot)
        try:
            assert ring.fits(6, 4, itemsize=4)
            assert not ring.fits(6, 4)  # the same batch in f64 would not fit
            ring.write_batch(0, queries, thresholds, dtype=np.float32)
            got_q, got_t = ring.read_batch(0, 6, 4, dtype=np.float32)
            assert got_q.dtype == np.float32 and got_t.dtype == np.float32
            np.testing.assert_array_equal(got_q, queries)
            np.testing.assert_array_equal(got_t, thresholds)
            results = rng.standard_normal(6)
            del got_q, got_t  # views pin the mapping; drop before close
            ring.write_results(0, results)
            np.testing.assert_array_equal(ring.read_results(0, 6), results)
        finally:
            ring.close()

    def test_oversized_batch_is_refused(self, rng):
        ring = ShmRing.create(num_slots=1, slot_bytes=64)
        try:
            assert not ring.fits(4, 8)
            with pytest.raises(ValueError, match="exceeds slot size"):
                ring.write_batch(0, rng.standard_normal((4, 8)), rng.standard_normal(4))
        finally:
            ring.close()

    def test_batch_nbytes_matches_the_layout(self):
        assert batch_nbytes(3, 5) == 3 * 5 * 8 + 3 * 8

    def test_slot_pool_blocks_until_release_and_times_out(self):
        pool = SlotPool(1)
        slot = pool.acquire()
        with pytest.raises(TimeoutError):
            pool.acquire(timeout=0.05)
        pool.release(slot)
        assert pool.acquire(timeout=0.05) == slot
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.acquire(timeout=0.05)


# ---------------------------------------------------------------------- #
# The network shard backend inside a cluster
# ---------------------------------------------------------------------- #
class TestNetworkBackend:
    def test_shm_transport_parity_and_fallback(self, tiny_cosine_split, fitted_kde):
        """Small batches ride the shm slots, oversized ones fall back to the
        control pipe — both bit-identical to the in-process estimator."""
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        small_slot = batch_nbytes(8, queries.shape[1])  # fits ≤ 8 rows
        config = ClusterConfig(num_shards=1, backend="network", shm_slot_bytes=small_slot)
        with EstimationCluster(config) as cluster:
            cluster.add_model("kde", fitted_kde)
            small = cluster.estimate("kde", queries[:8], thresholds[:8], use_cache=False)
            large = cluster.estimate("kde", queries, thresholds, use_cache=False)
            transport = cluster.stats()["per_shard"][0]["worker"]["transport"]
        direct = fitted_kde.estimate(queries, thresholds)
        np.testing.assert_array_equal(small, direct[:8])
        np.testing.assert_array_equal(large, direct)
        assert transport["shm_batches"] >= 1
        assert transport["fallback_batches"] >= 1
        assert transport["shm_bytes"] == batch_nbytes(8, queries.shape[1])

    def test_float32_shm_transport_stays_within_budget(self, tiny_cosine_split, fitted_kde):
        """With ``shm_dtype="float32"`` the batch crosses the process
        boundary in half the bytes; the answers are not bit-identical to
        the in-process float64 path (the inputs were rounded) but must stay
        within the float32 tier's error budget."""
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        config = ClusterConfig(num_shards=1, backend="network", shm_dtype="float32")
        with EstimationCluster(config) as cluster:
            cluster.add_model("kde", fitted_kde)
            served = cluster.estimate("kde", queries, thresholds, use_cache=False)
            transport = cluster.stats()["per_shard"][0]["worker"]["transport"]
        assert transport["shm_batches"] == 1
        # the wire carried float32 payloads: half the bytes of the f64 layout
        assert transport["shm_bytes"] == batch_nbytes(len(thresholds), queries.shape[1], 4)
        direct = fitted_kde.estimate(queries, thresholds)
        assert relative_deviation(served, direct) <= DEFAULT_ERROR_BUDGETS["float32"]

    def test_typed_errors_cross_the_process_boundary(self, fitted_kde):
        with EstimationCluster(ClusterConfig(num_shards=1, backend="network")) as cluster:
            cluster.add_model("kde", fitted_kde)
            with pytest.raises(KeyError):
                cluster.estimate("nope", np.zeros((1, 10)), np.zeros(1))
            with pytest.raises(UpdateNotSupportedError):
                cluster.update("kde", inserts=np.zeros((1, 10)))
            # The shard survives its own error replies.
            assert cluster.estimate("kde", np.zeros((2, 10)), np.zeros(2)).shape == (2,)

    def test_dead_worker_fails_calls_instead_of_hanging(self, fitted_kde):
        cluster = EstimationCluster(ClusterConfig(num_shards=1, backend="network"))
        try:
            cluster.add_model("kde", fitted_kde)
            cluster._shards[0].backend._process.kill()
            with pytest.raises(ShardCrashedError):
                cluster.estimate("kde", np.zeros((2, 10)), np.zeros(2))
            assert cluster.queue_depths() == [0], "failed call must free its slot"
        finally:
            cluster.close(drain=False)


# ---------------------------------------------------------------------- #
# Socket servers: the parity gate and the endpoint surface
# ---------------------------------------------------------------------- #
class TestSocketServers:
    def test_estimates_over_real_sockets_are_bit_identical(
        self, net_server, tiny_cosine_split, fitted_kde
    ):
        """Acceptance: POST /estimate (and a binary frame) over a real TCP
        socket returns exactly the bytes an in-process call produces."""
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        in_process = net_server.app.cluster.estimate(
            "kde", queries, thresholds, use_cache=False
        )
        host, port = net_server.binary_address
        with BinaryClient(host, port) as client:
            over_socket = client.estimate("kde", queries, thresholds, use_cache=False)
        http = HttpClient(*net_server.http_address)
        over_http = http.estimate("kde", queries, thresholds, use_cache=False)
        direct = fitted_kde.estimate(queries, thresholds)
        np.testing.assert_array_equal(over_socket, in_process)
        np.testing.assert_array_equal(over_socket, direct)
        np.testing.assert_array_equal(over_http, direct)

    def test_binary_control_operations(self, net_server):
        host, port = net_server.binary_address
        with BinaryClient(host, port) as client:
            assert client.ping()["ok"] is True
            stats = client.stats()
            assert stats["cluster"]["backend"] == "network"
            assert stats["cluster"]["num_shards"] == 2
            assert "kde" in client.models()["models"]
            assert len(client.reload_models()["shards"]) == 2

    def test_http_endpoints(self, net_server):
        http = HttpClient(*net_server.http_address)
        assert http.healthz() == {"ok": True, "num_shards": 2}
        stats = http.stats()
        assert stats["uptime_seconds"] >= 0
        assert "estimate" in stats["endpoints"] or stats["endpoints"] == stats["endpoints"]
        assert stats["cluster"]["overload_policy"] == "block"
        assert "kde" in http.models()["models"]
        assert "KDEEstimator" in http.models()["described"]["kde"]["class"]
        assert len(http.reload_models()["shards"]) == 2

    def test_unknown_model_maps_to_key_error_on_both_transports(self, net_server):
        host, port = net_server.binary_address
        with BinaryClient(host, port) as client:
            with pytest.raises(KeyError):
                client.estimate("nope", np.zeros((1, 10)), np.zeros(1))
        http = HttpClient(*net_server.http_address)
        with pytest.raises(KeyError):
            http.estimate("nope", np.zeros((1, 10)), np.zeros(1))

    def test_malformed_requests_map_to_4xx(self, net_server):
        host, port = net_server.http_address
        request = urllib.request.Request(
            f"http://{host}:{port}/estimate",
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(f"http://{host}:{port}/no-such-path", timeout=10)
        assert info.value.code == 404

    def test_shed_decision_survives_the_wire(self, fitted_kde, tiny_cosine_split):
        queries = tiny_cosine_split.test.queries[:4]
        thresholds = tiny_cosine_split.test.thresholds[:4]
        server = build_server(
            None, port=0, binary_port=0, num_shards=1, backend="inline",
            queue_capacity=1, overload_policy="shed",
        )
        with server:
            cluster = server.app.cluster
            cluster.add_model("kde", fitted_kde)
            pending = cluster.submit_estimate("kde", queries, thresholds)
            http = HttpClient(*server.http_address)
            with pytest.raises(ClusterOverloadedError):
                http.estimate("kde", queries, thresholds)
            host, port = server.binary_address
            with BinaryClient(host, port) as client:
                with pytest.raises(ClusterOverloadedError):
                    client.estimate("kde", queries, thresholds)
            assert pending.result().shape == thresholds.shape

    def test_hot_reload_swaps_the_artifact_without_restart(
        self, tiny_cosine_split, tmp_path
    ):
        queries = tiny_cosine_split.test.queries[:8]
        thresholds = tiny_cosine_split.test.thresholds[:8]
        v1 = create_estimator("kde", num_samples=64, seed=0).fit(tiny_cosine_split)
        v2 = create_estimator("kde", num_samples=32, seed=7).fit(tiny_cosine_split)
        expected_v1 = v1.estimate(queries, thresholds)
        expected_v2 = v2.estimate(queries, thresholds)
        assert not np.array_equal(expected_v1, expected_v2), "fixtures must differ"

        v1.save(tmp_path / "kde")
        server = build_server(tmp_path, port=0, binary_port=None, num_shards=2, backend="inline")
        with server:
            http = HttpClient(*server.http_address)
            np.testing.assert_array_equal(
                http.estimate("kde", queries, thresholds, use_cache=False), expected_v1
            )
            v2.save(tmp_path / "kde")  # new artifact lands on disk...
            np.testing.assert_array_equal(  # ...but shards still serve v1
                http.estimate("kde", queries, thresholds, use_cache=False), expected_v1
            )
            reloaded = http.reload_models()
            assert len(reloaded["shards"]) == 2
            np.testing.assert_array_equal(
                http.estimate("kde", queries, thresholds, use_cache=False), expected_v2
            )


# ---------------------------------------------------------------------- #
# Autoscaler
# ---------------------------------------------------------------------- #
class _StubCluster:
    """Just enough cluster surface for deterministic autoscaler unit tests."""

    def __init__(self, queue_capacity: int = 4) -> None:
        self.config = ClusterConfig(num_shards=1, queue_capacity=queue_capacity)
        self.depths = [0]
        self.num_shards = 1
        self.scale_calls = []

    def queue_depths(self):
        return list(self.depths)

    def scale_to(self, num_shards: int) -> int:
        self.scale_calls.append(num_shards)
        self.num_shards = num_shards
        self.depths = (self.depths + [0] * num_shards)[:num_shards]
        return num_shards


def _ticking_clock():
    state = [0.0]

    def clock() -> float:
        state[0] += 1.0
        return state[0]

    return clock


class TestAutoscaler:
    def test_scales_up_only_after_patience(self):
        cluster = _StubCluster(queue_capacity=4)
        scaler = Autoscaler(
            cluster,
            AutoscalerConfig(min_shards=1, max_shards=3, patience_up=2, cooldown_seconds=0.0),
            clock=_ticking_clock(),
        )
        cluster.depths = [4]  # fill 1.0 > high watermark
        first = scaler.observe()
        assert first["action"] is None and first["up_streak"] == 1
        second = scaler.observe()
        assert second["action"] == "up"
        assert cluster.scale_calls == [2]

    def test_cooldown_spaces_consecutive_actions(self):
        cluster = _StubCluster(queue_capacity=4)
        scaler = Autoscaler(
            cluster,
            AutoscalerConfig(
                min_shards=1, max_shards=4, patience_up=1, cooldown_seconds=5.0
            ),
            clock=_ticking_clock(),  # one second per observation
        )
        actions = []
        for _ in range(7):
            cluster.depths = [4] * cluster.num_shards  # keep every queue full
            actions.append(scaler.observe()["action"])
        # First tick acts; the next four (seconds 2..5) sit in cooldown.
        assert actions[0] == "up"
        assert actions.count("up") == 2
        assert cluster.scale_calls == [2, 3]

    def test_scales_down_slowly_and_respects_min_shards(self):
        cluster = _StubCluster(queue_capacity=4)
        cluster.num_shards = 2
        cluster.depths = [0, 0]
        scaler = Autoscaler(
            cluster,
            AutoscalerConfig(
                min_shards=1, max_shards=4, patience_down=3, cooldown_seconds=0.0
            ),
            clock=_ticking_clock(),
        )
        actions = [scaler.observe()["action"] for _ in range(6)]
        assert actions[:3] == [None, None, "down"]
        assert cluster.num_shards == 1
        assert "down" not in actions[3:], "never shrinks below min_shards"

    def test_pressure_flip_resets_the_streak(self):
        cluster = _StubCluster(queue_capacity=4)
        scaler = Autoscaler(
            cluster,
            AutoscalerConfig(min_shards=1, max_shards=2, patience_up=2, cooldown_seconds=0.0),
            clock=_ticking_clock(),
        )
        cluster.depths = [4]
        scaler.observe()
        cluster.depths = [0]  # pressure vanishes before patience is met
        idle = scaler.observe()
        assert idle["up_streak"] == 0 and idle["action"] is None
        assert cluster.scale_calls == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_shards=3, max_shards=2)
        with pytest.raises(ValueError):
            AutoscalerConfig(low_queue_fill=0.6, high_queue_fill=0.5)
        with pytest.raises(ValueError):
            AutoscalerConfig(patience_up=0)

    def test_scaling_a_live_cluster_drops_no_responses(
        self, tiny_cosine_split, fitted_kde
    ):
        """Acceptance: scale up under pressure, drain when idle, and every
        submitted batch still gathers exactly its own correct results."""
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        direct = fitted_kde.estimate(queries, thresholds)
        config = ClusterConfig(num_shards=1, queue_capacity=4)
        with EstimationCluster(config) as cluster:
            cluster.add_model("kde", fitted_kde)
            scaler = Autoscaler(
                cluster,
                AutoscalerConfig(
                    min_shards=1, max_shards=2, patience_up=2, patience_down=3,
                    cooldown_seconds=0.0,
                ),
                clock=_ticking_clock(),
            )
            futures = [
                cluster.submit_estimate("kde", queries, thresholds, use_cache=False)
                for _ in range(3)
            ]
            scaler.observe()
            burst = scaler.observe()
            assert burst["action"] == "up" and cluster.num_shards == 2
            for future in futures:  # submitted before the scale-up
                np.testing.assert_array_equal(future.result(), direct)
            # Work submitted after the rebalance lands on the wider ring.
            np.testing.assert_array_equal(
                cluster.estimate("kde", queries, thresholds, use_cache=False), direct
            )
            idle = [scaler.observe()["action"] for _ in range(3)]
            assert idle[-1] == "down" and cluster.num_shards == 1
            np.testing.assert_array_equal(
                cluster.estimate("kde", queries, thresholds, use_cache=False), direct
            )
            assert len(cluster.stats()["scale_events"]) == 2


# ---------------------------------------------------------------------- #
# Cluster lifecycle satellites: graceful shutdown + admission concurrency
# ---------------------------------------------------------------------- #
class TestClusterLifecycle:
    def test_close_drains_pending_calls(self, tiny_cosine_split, fitted_kde):
        """Regression: close() must settle in-flight futures, not strand them."""
        queries = tiny_cosine_split.test.queries[:6]
        thresholds = tiny_cosine_split.test.thresholds[:6]
        cluster = EstimationCluster(ClusterConfig(num_shards=2))
        cluster.add_model("kde", fitted_kde)
        futures = [
            cluster.submit_estimate("kde", queries, thresholds, use_cache=False)
            for _ in range(3)
        ]
        cluster.close()
        direct = fitted_kde.estimate(queries, thresholds)
        for future in futures:
            np.testing.assert_array_equal(future.result(), direct)
        cluster.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            cluster.estimate("kde", queries, thresholds)

    def test_close_without_drain_cancels_pending_calls(
        self, tiny_cosine_split, fitted_kde
    ):
        queries = tiny_cosine_split.test.queries[:6]
        thresholds = tiny_cosine_split.test.thresholds[:6]
        cluster = EstimationCluster(ClusterConfig(num_shards=2))
        cluster.add_model("kde", fitted_kde)
        futures = [cluster.submit_estimate("kde", queries, thresholds) for _ in range(2)]
        cluster.close(drain=False)
        for future in futures:
            with pytest.raises(ClusterClosedError):
                future.result()

    def test_concurrent_shed_rejections_are_typed_and_accounted(
        self, tiny_cosine_split, fitted_kde
    ):
        queries = tiny_cosine_split.test.queries[:4]
        thresholds = tiny_cosine_split.test.thresholds[:4]
        config = ClusterConfig(num_shards=1, queue_capacity=1, overload_policy="shed")
        with EstimationCluster(config) as cluster:
            cluster.add_model("kde", fitted_kde)
            holder = cluster.submit_estimate("kde", queries, thresholds)
            errors = []
            barrier = threading.Barrier(4)

            def _push() -> None:
                barrier.wait()
                try:
                    cluster.submit_estimate("kde", queries, thresholds)
                    errors.append(None)
                except Exception as error:  # noqa: BLE001 - recording the type
                    errors.append(error)

            threads = [threading.Thread(target=_push) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(isinstance(e, ClusterOverloadedError) for e in errors)
            assert cluster.stats()["total_shed_requests"] == 4 * len(thresholds)
            assert holder.result().shape == thresholds.shape
            # The cluster recovers once the queue drains.
            assert cluster.estimate("kde", queries, thresholds).shape == thresholds.shape

    def test_block_policy_backpressure_under_concurrent_clients(
        self, tiny_cosine_split, fitted_kde
    ):
        queries = tiny_cosine_split.test.queries[:4]
        thresholds = tiny_cosine_split.test.thresholds[:4]
        direct = fitted_kde.estimate(queries, thresholds)
        config = ClusterConfig(num_shards=1, queue_capacity=2, overload_policy="block")
        with EstimationCluster(config) as cluster:
            cluster.add_model("kde", fitted_kde)
            failures = []

            def _client() -> None:
                try:
                    for _ in range(3):
                        result = cluster.estimate(
                            "kde", queries, thresholds, use_cache=False
                        )
                        np.testing.assert_array_equal(result, direct)
                except Exception as error:  # noqa: BLE001
                    failures.append(error)

            threads = [threading.Thread(target=_client) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert failures == []
            stats = cluster.stats()
            assert stats["total_shed_requests"] == 0
            assert stats["total_requests"] == 6 * 3 * len(thresholds)
            assert stats["per_shard"][0]["max_queue_depth"] <= 2

    def test_percentile_stats_with_zero_settled_calls(self, fitted_kde):
        with EstimationCluster(ClusterConfig(num_shards=2)) as cluster:
            cluster.add_model("kde", fitted_kde)
            for entry in cluster.stats()["per_shard"]:
                assert entry["latency"] == {
                    "mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0
                }


# ---------------------------------------------------------------------- #
# Saturation benchmark + serve CLI
# ---------------------------------------------------------------------- #
class TestSaturation:
    def test_micro_sweep_produces_a_jsonable_report(
        self, tiny_cosine_split, fitted_kde
    ):
        scenario = SaturationScenario(name="micro", backend="inline", num_shards=1)
        report = run_saturation_benchmark(
            scenario,
            "kde",
            tiny_cosine_split.test.queries,
            tiny_cosine_split.test.thresholds,
            estimator=fitted_kde,
            offered_loads=(200.0,),
            duration_seconds=0.3,
            batch_size=8,
            connections=2,
            seed=0,
        )
        assert report.points[0].batches_completed > 0
        assert report.knee_rps > 0
        assert report.final_shards == 1
        payload = json.dumps(report_as_dict(report))
        assert "achieved_rps" in payload
        assert "knee" in report.text


class TestServeCLI:
    def test_serve_command_boots_and_exits(self, kde_model_dir, capsys):
        exit_code = main(
            [
                "serve",
                str(kde_model_dir),
                "--port", "0",
                "--binary-port", "-2",
                "--backend", "inline",
                "--max-seconds", "0.2",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "http://" in out and "kde" in out

"""Tests for the observability layer: metrics registry, snapshots and the
Prometheus exposition, cross-process request tracing, and the live surfaces
(`/metrics`, `repro top`)."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro import create_estimator
from repro.net import BinaryClient, HttpClient, build_server, protocol
from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    SNAPSHOT_RING_LIMIT,
    TraceSink,
    aggregate_histogram,
    configure_tracing,
    histogram_percentile,
    merge_snapshots,
    new_trace_id,
    read_trace_file,
    render_dashboard,
    span,
    trace_context,
    tracing_enabled,
)


# ---------------------------------------------------------------------- #
# Registry primitives
# ---------------------------------------------------------------------- #
class TestRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "requests", ("model",))
        child = requests.labels(model="kde")
        child.inc()
        child.inc(4.0)
        assert child.value == 5.0
        with pytest.raises(ValueError):
            child.inc(-1.0)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        depth = registry.gauge("queue_depth", "depth")
        depth.set(3)
        depth.inc()
        depth.dec(2)
        assert depth.labels().value == 2.0

    def test_label_schema_is_enforced(self):
        registry = MetricsRegistry()
        family = registry.counter("hits_total", "hits", ("model", "shard"))
        with pytest.raises(ValueError):
            family.labels(model="kde")  # missing "shard"
        # Re-registering with a different schema is a conflict.
        with pytest.raises(ValueError):
            registry.gauge("hits_total", "hits")
        with pytest.raises(ValueError):
            registry.counter("hits_total", "hits", ("model",))

    def test_histogram_exact_percentiles_over_ring(self, rng):
        registry = MetricsRegistry()
        latency = registry.histogram("latency_seconds", "latency", ring_size=512)
        samples = rng.uniform(0.001, 0.5, size=300)
        for value in samples:
            latency.labels().observe(value)
        child = latency.labels()
        assert child.count == 300
        assert child.sum == pytest.approx(samples.sum())
        assert child.mean() == pytest.approx(samples.mean())
        for q in (50, 95, 99):
            assert child.percentile(q) == pytest.approx(np.percentile(samples, q))

    def test_histogram_ring_is_bounded(self):
        registry = MetricsRegistry()
        latency = registry.histogram("latency_seconds", "latency", ring_size=16)
        for i in range(100):
            latency.observe(float(i))
        child = latency.labels()
        assert child.count == 100  # buckets keep the full count…
        assert len(child.ring_array()) == 16  # …the ring stays bounded
        assert child.percentile(50) == pytest.approx(
            np.percentile(np.arange(84, 100, dtype=float), 50)
        )

    def test_histogram_bounds_must_be_sorted(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", "bad", buckets=(0.5, 0.1))


# ---------------------------------------------------------------------- #
# Snapshots: transport, merge, delta
# ---------------------------------------------------------------------- #
def _observe_all(registry: MetricsRegistry, values, model="kde") -> None:
    requests = registry.counter("requests_total", "requests", ("model",))
    depth = registry.gauge("depth", "depth", aggregation="sum")
    peak = registry.gauge("peak", "peak", aggregation="max")
    latency = registry.histogram("latency_seconds", "latency")
    requests.labels(model=model).inc(len(values))
    depth.set(len(values))
    peak.set(max(values))
    for value in values:
        latency.observe(value)


class TestSnapshot:
    def test_snapshot_survives_json_roundtrip(self, rng):
        registry = MetricsRegistry()
        _observe_all(registry, rng.uniform(0.001, 0.1, size=50).tolist())
        snapshot = registry.snapshot()
        revived = MetricsSnapshot.from_dict(json.loads(json.dumps(snapshot.as_dict())))
        assert revived.total("requests_total") == 50
        assert revived.value("latency_seconds")["count"] == 50
        assert revived.to_prometheus() == snapshot.to_prometheus()

    def test_cross_process_merge_equals_in_process_totals(self, rng):
        """Two per-shard registries merged == one registry fed everything."""
        shard_a, shard_b, combined = (MetricsRegistry() for _ in range(3))
        values_a = rng.uniform(0.0005, 0.2, size=120).tolist()
        values_b = rng.uniform(0.0005, 0.2, size=80).tolist()
        _observe_all(shard_a, values_a)
        _observe_all(shard_b, values_b)
        _observe_all(combined, values_a + values_b)

        merged = merge_snapshots([shard_a.snapshot(), shard_b.snapshot()])
        expected = combined.snapshot()
        assert merged.total("requests_total") == expected.total("requests_total")
        assert merged.value("depth") == 200  # sum aggregation
        assert merged.value("peak") == pytest.approx(max(values_a + values_b))
        got = merged.value("latency_seconds")
        want = expected.value("latency_seconds")
        assert got["counts"] == want["counts"]
        assert got["count"] == want["count"]
        assert got["sum"] == pytest.approx(want["sum"])

    def test_with_labels_keeps_shards_apart(self):
        shards = []
        for shard in range(3):
            registry = MetricsRegistry()
            registry.counter("requests_total", "requests").inc(10 * (shard + 1))
            shards.append(registry.snapshot().with_labels(shard=str(shard)))
        merged = merge_snapshots(shards)
        assert merged.value("requests_total", shard="1") == 20
        assert merged.total("requests_total") == 60

    def test_delta_subtracts_counters_and_histograms(self):
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "requests")
        latency = registry.histogram("latency_seconds", "latency")
        requests.inc(5)
        latency.observe(0.01)
        before = registry.snapshot()
        requests.inc(3)
        latency.observe(0.02)
        delta = registry.snapshot().delta(before)
        assert delta.value("requests_total") == 3
        assert delta.value("latency_seconds")["count"] == 1

    def test_merge_rejects_conflicting_schemas(self):
        left = MetricsRegistry()
        left.counter("metric", "m")
        right = MetricsRegistry()
        right.gauge("metric", "m")
        with pytest.raises(ValueError):
            left.snapshot().merge(right.snapshot())

    def test_snapshot_ring_is_capped(self):
        registry = MetricsRegistry()
        latency = registry.histogram("latency_seconds", "latency")
        for i in range(2 * SNAPSHOT_RING_LIMIT):
            latency.observe(0.001 * (i + 1))
        data = registry.snapshot().value("latency_seconds")
        assert len(data["ring"]) == SNAPSHOT_RING_LIMIT
        merged = merge_snapshots([registry.snapshot(), registry.snapshot()])
        assert len(merged.value("latency_seconds")["ring"]) == SNAPSHOT_RING_LIMIT


class TestHistogramPercentile:
    def test_exact_when_ring_holds_everything(self, rng):
        registry = MetricsRegistry()
        latency = registry.histogram("latency_seconds", "latency")
        samples = rng.uniform(0.001, 1.0, size=200)
        for value in samples:
            latency.observe(value)
        data = registry.snapshot().value("latency_seconds")
        for q in (50, 95, 99):
            assert histogram_percentile(data, q) == pytest.approx(
                np.percentile(samples, q)
            )

    def test_bucket_interpolation_error_is_bounded(self, rng):
        """Past the ring, percentiles interpolate within one (doubling) bucket."""
        registry = MetricsRegistry()
        latency = registry.histogram("latency_seconds", "latency", ring_size=64)
        samples = rng.uniform(0.001, 1.0, size=5000)
        for value in samples:
            latency.observe(value)
        data = registry.snapshot().value("latency_seconds")
        assert data["count"] > len(data["ring"])  # forces the bucket path
        for q in (50, 95, 99):
            exact = float(np.percentile(samples, q))
            approx = histogram_percentile(data, q)
            # log-spaced doubling buckets: estimate within [0.5x, 2x] of exact
            assert 0.5 * exact <= approx <= 2.0 * exact

    def test_aggregate_histogram_folds_series(self):
        registry = MetricsRegistry()
        latency = registry.histogram("latency_seconds", "latency", ("shard",))
        latency.labels(shard="0").observe(0.01)
        latency.labels(shard="1").observe(0.02)
        data = aggregate_histogram(registry.snapshot(), "latency_seconds")
        assert data["count"] == 2
        assert aggregate_histogram(registry.snapshot(), "nope") is None


# ---------------------------------------------------------------------- #
# Prometheus text exposition
# ---------------------------------------------------------------------- #
def _validate_prometheus(text: str) -> dict:
    """A small format checker: returns {family: {"type", "samples": {...}}}.

    Asserts the invariants a real scraper relies on: HELP/TYPE precede
    samples, histogram buckets are cumulative and end at +Inf == _count.
    """
    families: dict = {}
    current = None
    for line in text.splitlines():
        assert line == line.strip() and line, f"blank/padded line: {line!r}"
        if line.startswith("# HELP "):
            current = line.split(" ", 3)[2]
            families.setdefault(current, {"samples": {}})
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name == current, "TYPE must follow its HELP"
            assert kind in ("counter", "gauge", "histogram")
            families[name]["type"] = kind
        else:
            name = line.split("{")[0].split(" ")[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in families:
                    base = name[: -len(suffix)]
            assert base in families, f"sample {name} before HELP/TYPE"
            sample, value = line.rsplit(" ", 1)
            float(value.replace("+Inf", "inf"))  # parses as a number
            families[base]["samples"][sample] = value
    for name, family in families.items():
        if family.get("type") != "histogram":
            continue
        buckets: dict = {}
        for sample, value in family["samples"].items():
            if f"{name}_bucket" in sample:
                key = sample.split('le="')[0]
                buckets.setdefault(key, []).append(float(value.replace("+Inf", "inf")))
        for series in buckets.values():
            assert series == sorted(series), "bucket counts must be cumulative"
    return families


class TestPrometheusText:
    def test_exposition_is_valid(self, rng):
        registry = MetricsRegistry()
        _observe_all(registry, rng.uniform(0.001, 0.1, size=40).tolist())
        families = _validate_prometheus(registry.snapshot().to_prometheus())
        assert families["requests_total"]["type"] == "counter"
        assert families["latency_seconds"]["type"] == "histogram"
        inf_line = 'latency_seconds_bucket{le="+Inf"}'
        assert families["latency_seconds"]["samples"][inf_line] == "40"
        assert families["latency_seconds"]["samples"]["latency_seconds_count"] == "40"

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", "odd", ("name",)).labels(
            name='we"ird\nmodel\\x'
        ).inc()
        text = registry.snapshot().to_prometheus()
        assert 'name="we\\"ird\\nmodel\\\\x"' in text
        assert "\n\n" not in text


# ---------------------------------------------------------------------- #
# Tracing primitives
# ---------------------------------------------------------------------- #
class TestTracing:
    def test_sampling_is_deterministic_and_proportional(self):
        sink = TraceSink("/dev/null", sample=0.5)
        ids = [new_trace_id() for _ in range(400)]
        first = [sink.sampled(tid) for tid in ids]
        assert first == [sink.sampled(tid) for tid in ids]  # stable per ID
        rate = sum(first) / len(first)
        assert 0.3 < rate < 0.7
        assert all(TraceSink("/dev/null", sample=1.0).sampled(tid) for tid in ids)
        assert not any(TraceSink("/dev/null", sample=0.0).sampled(tid) for tid in ids)

    def test_span_records_to_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        configure_tracing(str(path), sample=1.0, role="main")
        try:
            assert tracing_enabled()
            tid = new_trace_id()
            with trace_context(tid), span("unit.test", rows=7) as extra:
                extra["late"] = "field"
            # Untraced block: no trace ID bound, nothing recorded.
            with span("unit.ignored"):
                pass
        finally:
            configure_tracing(None)
        spans = read_trace_file(str(path))
        assert len(spans) == 1
        record = spans[0]
        assert record["trace_id"] == tid
        assert record["span"] == "unit.test"
        assert record["role"] == "main"
        assert record["rows"] == 7
        assert record["late"] == "field"
        assert record["wall_s"] >= 0.0

    def test_read_trace_file_skips_torn_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"trace_id": "aa", "span": "x"}\n{"torn\n\n')
        assert read_trace_file(str(path)) == [{"trace_id": "aa", "span": "x"}]

    def test_protocol_carries_optional_trace_field(self, rng):
        queries = rng.standard_normal((3, 4))
        thresholds = rng.standard_normal(3)
        tid = new_trace_id()
        payload = protocol.pack_estimate_request(
            "kde", queries, thresholds, True, trace_id=tid
        )
        op, fields = protocol.parse_request(payload)
        assert op == protocol.OP_ESTIMATE
        assert fields["trace"] == tid
        np.testing.assert_array_equal(fields["queries"], queries)
        # Untraced frames parse exactly as before the field existed.
        plain = protocol.pack_estimate_request("kde", queries, thresholds, True)
        _, fields = protocol.parse_request(plain)
        assert fields["trace"] is None
        with pytest.raises(ValueError):
            protocol.pack_estimate_request(
                "kde", queries, thresholds, True, trace_id="x" * 100
            )


# ---------------------------------------------------------------------- #
# End to end: traces cross the wire and processes; /metrics serves them
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def traced_server(tiny_cosine_split, tmp_path_factory):
    """A running 2-shard network server with tracing on, plus its trace file."""
    tmp = tmp_path_factory.mktemp("obs-serve")
    kde = create_estimator("kde", num_samples=64, seed=0).fit(tiny_cosine_split)
    kde.save(tmp / "kde", metadata={"setting": "face-cos", "scale": "tiny", "seed": 0})
    trace_path = str(tmp / "trace.jsonl")
    configure_tracing(trace_path, sample=1.0, role="main")
    server = build_server(tmp, port=0, binary_port=0, num_shards=2, backend="network")
    server.start()
    yield server, trace_path
    server.stop()
    configure_tracing(None)


class TestObservableServer:
    def test_binary_trace_id_reaches_worker_spans(self, traced_server, tiny_cosine_split):
        server, trace_path = traced_server
        host, port = server.binary_address
        queries = tiny_cosine_split.test.queries[:8]
        thresholds = tiny_cosine_split.test.thresholds[:8]
        tid = new_trace_id()
        with BinaryClient(host, port) as client:
            client.estimate("kde", queries, thresholds, trace_id=tid)
        spans = [s for s in read_trace_file(trace_path) if s["trace_id"] == tid]
        by_name = {s["span"]: s for s in spans}
        assert by_name["client.request"]["role"] == "main"
        assert by_name["server.estimate"]["transport"] == "binary"
        worker = by_name["worker.estimate"]
        assert worker["role"] == "shard"
        assert worker["via"] == "shm"
        assert worker["pid"] != by_name["server.estimate"]["pid"]
        assert "cluster.admission" in by_name and "transport.shm" in by_name

    def test_http_trace_header_round_trips(self, traced_server, tiny_cosine_split):
        server, trace_path = traced_server
        host, port = server.http_address
        queries = tiny_cosine_split.test.queries[:4]
        thresholds = tiny_cosine_split.test.thresholds[:4]
        client = HttpClient(host, port, trace=True)
        client.estimate("kde", queries, thresholds)
        spans = read_trace_file(trace_path)
        http_spans = [
            s for s in spans
            if s["span"] == "server.estimate" and s.get("transport") == "http"
        ]
        assert http_spans, "HTTP server span missing"
        tid = http_spans[-1]["trace_id"]
        names = {s["span"] for s in spans if s["trace_id"] == tid}
        assert {"client.request", "server.estimate", "worker.estimate"} <= names

    def test_metrics_endpoint_serves_valid_prometheus(self, traced_server):
        server, _ = traced_server
        host, port = server.http_address
        text = HttpClient(host, port).metrics_text()
        families = _validate_prometheus(text)
        # Per-shard latency histograms and cache hit-rate gauges are there.
        assert families["repro_cluster_sub_batch_latency_seconds"]["type"] == "histogram"
        samples = families["repro_cache_hit_rate"]["samples"]
        assert any('shard="0"' in key for key in samples)
        assert families["repro_app_requests_total"]["type"] == "counter"
        # Worker-side service metrics arrive stamped with the shard label.
        service = families["repro_service_requests_total"]["samples"]
        assert any("shard=" in key and "model=" in key for key in service)

    def test_stats_layers_summarize_each_level(self, traced_server):
        server, _ = traced_server
        host, port = server.http_address
        stats = HttpClient(host, port).stats()
        layers = stats["layers"]
        for layer in ("server.request", "cluster.sub_batch", "service.estimate"):
            assert layers[layer]["count"] > 0
            assert layers[layer]["p99_ms"] >= layers[layer]["p50_ms"] >= 0.0

    def test_cluster_snapshot_totals_match_stats(self, traced_server):
        server, _ = traced_server
        cluster = server.app.cluster
        stats = cluster.stats()
        snapshot = cluster.metrics_snapshot(stats=stats)
        assert snapshot.total("repro_cluster_requests_total") == stats["total_requests"]
        worker_total = sum(
            entry["worker"]["total_requests"] for entry in stats["per_shard"]
        )
        assert snapshot.total("repro_service_requests_total") == worker_total


# ---------------------------------------------------------------------- #
# The `repro top` renderer
# ---------------------------------------------------------------------- #
class TestTopDashboard:
    def _stats(self, requests=100):
        return {
            "uptime_seconds": 12.5,
            "endpoints": {"estimate": requests, "stats": 2},
            "layers": {
                "server.request": {"count": requests, "p50_ms": 1.0, "p99_ms": 2.0}
            },
            "cluster": {
                "num_shards": 2,
                "backend": "network",
                "overload_policy": "block",
                "queue_capacity": 8,
                "total_requests": requests,
                "total_shed_requests": 0,
                "total_updates": 0,
                "per_shard": [
                    {
                        "shard": 0,
                        "queue_depth": 4,
                        "max_queue_depth": 6,
                        "requests": requests // 2,
                        "latency": {"p50_ms": 1.2, "p95_ms": 3.4, "p99_ms": 5.6},
                        "cache": {"hit_rate": 0.75},
                    }
                ],
            },
            "autoscaler": {
                "min_shards": 1,
                "max_shards": 4,
                "num_shards": 2,
                "observations": 10,
                "actions": [
                    {"action": "up", "num_shards": 2, "mean_queue_fill": 0.8}
                ],
            },
        }

    def test_render_contains_each_section(self):
        frame = render_dashboard(self._stats(), previous=None, interval=1.0)
        assert "repro top" in frame and "backend network" in frame
        assert "75.0%" in frame  # cache hit rate
        assert "server.request" in frame
        assert "scale up" in frame
        assert "estimate=100" in frame

    def test_rates_derive_from_previous_frame(self):
        previous = self._stats(requests=100)
        frame = render_dashboard(self._stats(requests=150), previous, interval=1.0)
        assert "50.0 req/s" in frame

    def test_run_top_polls_and_renders(self, traced_server):
        from repro.obs import run_top

        server, _ = traced_server
        host, port = server.http_address
        frames: list = []
        count = run_top(
            f"http://{host}:{port}", interval=0.01, iterations=2, write=frames.append
        )
        assert count == 2
        assert "repro top" in frames[-1]

"""Unit tests for the neural-network substrate: modules, layers, optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients
from repro.nn import (
    SGD,
    Adam,
    Autoencoder,
    DataLoader,
    Dropout,
    ELUPlusOne,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Softplus,
    Tanh,
    feed_forward,
    train_validation_split,
)
from repro.nn.init import get_initializer, he_normal, small_normal, xavier_uniform, zeros


class TestInitializers:
    def test_xavier_bounds(self, rng):
        weights = xavier_uniform((100, 50), rng)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(weights) <= limit)

    def test_he_scale(self, rng):
        weights = he_normal((2000, 10), rng)
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 2000), rel=0.15)

    def test_zeros(self):
        assert np.all(zeros((3, 3)) == 0)

    def test_small_normal(self, rng):
        weights = small_normal((5000,), rng, std=0.01)
        assert abs(weights.std() - 0.01) < 0.002

    def test_registry_lookup(self):
        assert get_initializer("he") is he_normal
        with pytest.raises(KeyError):
            get_initializer("bogus")


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(5, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias(self, rng):
        layer = Linear(5, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients_reach_parameters(self, rng):
        layer = Linear(4, 2, rng=rng)
        out = layer(Tensor(rng.normal(size=(6, 4))))
        out.sum().backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None

    def test_gradient_correctness(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.normal(size=(4, 3)))
        assert check_gradients(lambda w, b: x @ w + b, [layer.weight, layer.bias])


class TestActivationsAndContainers:
    @pytest.mark.parametrize("activation", [ReLU(), Sigmoid(), Tanh(), Softplus(), ELUPlusOne()])
    def test_activation_shapes(self, rng, activation):
        x = Tensor(rng.normal(size=(5, 4)))
        assert activation(x).shape == (5, 4)

    def test_elu_plus_one_positive(self, rng):
        out = ELUPlusOne()(Tensor(rng.normal(size=(200,)) * 5))
        assert np.all(out.data > 0)

    def test_elu_plus_one_continuity_at_zero(self):
        out = ELUPlusOne()(Tensor([-1e-9, 0.0, 1e-9]))
        np.testing.assert_allclose(out.data, [1.0, 1.0, 1.0], atol=1e-6)

    def test_sequential_applies_in_order(self, rng):
        model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 1, rng=rng))
        out = model(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 1)
        assert len(model) == 3

    def test_feed_forward_builder(self, rng):
        model = feed_forward(6, [10, 10], 2, rng=rng)
        out = model(Tensor(rng.normal(size=(4, 6))))
        assert out.shape == (4, 2)

    def test_feed_forward_output_activation(self, rng):
        model = feed_forward(3, [5], 1, output_activation="softplus", rng=rng)
        out = model(Tensor(rng.normal(size=(10, 3))))
        assert np.all(out.data > 0)

    def test_feed_forward_unknown_activation(self, rng):
        with pytest.raises(KeyError):
            feed_forward(3, [5], 1, activation="bogus", rng=rng)

    def test_dropout_eval_mode(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = Tensor(rng.normal(size=(5, 5)))
        np.testing.assert_allclose(layer(x).data, x.data)


class TestModuleProtocol:
    def test_named_parameters_nested(self, rng):
        class Wrapper(Module):
            def __init__(self):
                super().__init__()
                self.inner = Linear(2, 2, rng=rng)
                self.extra = Tensor(np.zeros(3), requires_grad=True)

            def forward(self, x):
                return self.inner(x) + self.extra[:2]

        names = dict(Wrapper().named_parameters())
        assert "inner.weight" in names and "inner.bias" in names and "extra" in names

    def test_named_parameters_in_lists(self, rng):
        model = Sequential(Linear(2, 3, rng=rng), ReLU(), Linear(3, 1, rng=rng))
        names = [name for name, _ in model.named_parameters()]
        assert any(name.startswith("layers.0") for name in names)
        assert any(name.startswith("layers.2") for name in names)

    def test_state_dict_roundtrip(self, rng):
        model = feed_forward(4, [6], 1, rng=rng)
        state = model.state_dict()
        clone = feed_forward(4, [6], 1, rng=np.random.default_rng(999))
        clone.load_state_dict(state)
        x = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_state_dict_shape_mismatch(self, rng):
        model = feed_forward(4, [6], 1, rng=rng)
        other = feed_forward(4, [7], 1, rng=rng)
        with pytest.raises((KeyError, ValueError)):
            model.load_state_dict(other.state_dict())

    def test_num_parameters(self, rng):
        model = Linear(4, 3, rng=rng)
        assert model.num_parameters() == 4 * 3 + 3

    def test_train_eval_propagates(self, rng):
        model = Sequential(Dropout(0.5, rng=rng), Linear(2, 2, rng=rng))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self, rng):
        model = Linear(3, 1, rng=rng)
        model(Tensor(rng.normal(size=(2, 3)))).sum().backward()
        model.zero_grad()
        assert model.weight.grad is None


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0])
        parameter = Tensor(np.zeros(2), requires_grad=True)
        return parameter, target

    def test_sgd_converges_on_quadratic(self):
        parameter, target = self._quadratic_problem()
        optimizer = SGD([parameter], learning_rate=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss = ((parameter - Tensor(target)) ** 2).sum()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, target, atol=1e-3)

    def test_sgd_with_momentum_converges(self):
        parameter, target = self._quadratic_problem()
        optimizer = SGD([parameter], learning_rate=0.05, momentum=0.9)
        for _ in range(200):
            optimizer.zero_grad()
            ((parameter - Tensor(target)) ** 2).sum().backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, target, atol=1e-2)

    def test_adam_converges_on_quadratic(self):
        parameter, target = self._quadratic_problem()
        optimizer = Adam([parameter], learning_rate=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            ((parameter - Tensor(target)) ** 2).sum().backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, target, atol=1e-2)

    def test_adam_gradient_clipping(self):
        parameter = Tensor(np.zeros(2), requires_grad=True)
        optimizer = Adam([parameter], learning_rate=0.1, max_grad_norm=1.0)
        optimizer.zero_grad()
        (parameter * 1e6).sum().backward()
        optimizer.step()
        assert np.all(np.isfinite(parameter.data))

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            Adam([], learning_rate=0.1)

    def test_weight_decay_shrinks_parameters(self):
        parameter = Tensor(np.ones(3) * 10.0, requires_grad=True)
        optimizer = SGD([parameter], learning_rate=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        (parameter * 0.0).sum().backward()
        optimizer.step()
        assert np.all(np.abs(parameter.data) < 10.0)


class TestDataLoader:
    def test_batches_cover_all_rows(self, rng):
        x = rng.normal(size=(25, 3))
        y = rng.normal(size=25)
        loader = DataLoader(x, y, batch_size=8, shuffle=True, rng=rng)
        seen = sum(len(batch_x) for batch_x, _ in loader)
        assert seen == 25
        assert len(loader) == 4

    def test_no_shuffle_keeps_order(self, rng):
        x = np.arange(10)[:, None].astype(float)
        loader = DataLoader(x, batch_size=4, shuffle=False)
        first = next(iter(loader))[0]
        np.testing.assert_allclose(first[:, 0], [0, 1, 2, 3])

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((5, 2)), np.zeros(4))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((5, 2)), batch_size=0)

    def test_train_validation_split_sizes(self, rng):
        x = rng.normal(size=(50, 2))
        (train_x,), (valid_x,) = train_validation_split([x], validation_fraction=0.2, rng=rng)
        assert len(train_x) == 40 and len(valid_x) == 10

    def test_train_validation_split_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            train_validation_split([np.zeros((10, 1))], validation_fraction=1.5)


class TestAutoencoder:
    def test_encode_shape(self, rng):
        model = Autoencoder(input_dim=8, latent_dim=3, hidden_sizes=(6,), rng=rng)
        latent = model.encode(Tensor(rng.normal(size=(5, 8))))
        assert latent.shape == (5, 3)

    def test_pretrain_reduces_reconstruction_loss(self, rng):
        data = rng.normal(size=(200, 6))
        model = Autoencoder(input_dim=6, latent_dim=3, hidden_sizes=(12,), rng=rng)
        history = model.pretrain(data, epochs=15, batch_size=32, learning_rate=5e-3, rng=rng)
        assert history[-1] < history[0]

    def test_reconstruction_loss_scalar(self, rng):
        model = Autoencoder(input_dim=4, latent_dim=2, rng=rng)
        loss = model.reconstruction_loss(Tensor(rng.normal(size=(7, 4))))
        assert loss.size == 1

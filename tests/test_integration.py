"""End-to-end integration tests across the whole library.

These exercise the same paths the benchmarks use, at tiny scale: dataset ->
workload -> estimators -> metrics -> reports, plus the consistency invariant
across every estimator that claims it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    SelNetConfig,
    SelNetEstimator,
    build_workload_split,
    make_dataset,
)
from repro.baselines import (
    DLNEstimator,
    KDEEstimator,
    LightGBMEstimator,
    LSHEstimator,
    UMNNEstimator,
)
from repro.eval import compute_error_metrics, empirical_monotonicity
from repro.experiments import (
    TINY,
    figure4_control_points,
    figure5_updates,
    run_ablation_table,
    run_monotonicity_table,
    run_partition_method_table,
    run_partition_size_sweep,
    run_timing_table,
)

FAST = dict(epochs=4, early_stopping_patience=None)


@pytest.fixture(scope="module")
def split():
    dataset = make_dataset("face_like", num_vectors=700, dim=10, num_clusters=14, seed=21)
    return build_workload_split(
        dataset,
        "cosine",
        num_queries=50,
        thresholds_per_query=12,
        max_selectivity_fraction=0.2,
        seed=2,
    )


class TestPublicAPIWorkflow:
    def test_quickstart_workflow(self, split):
        """The README quickstart: build data, fit SelNet, estimate, evaluate."""
        config = SelNetConfig(
            num_control_points=8,
            epochs=10,
            ae_pretrain_epochs=3,
            num_partitions=1,
            early_stopping_patience=None,
            seed=0,
        )
        estimator = SelNetEstimator(config).fit(split)
        estimates = estimator.estimate(split.test.queries, split.test.thresholds)
        metrics = compute_error_metrics(estimates, split.test.selectivities)
        constant_mse = np.mean(
            (split.train.selectivities.mean() - split.test.selectivities) ** 2
        )
        assert metrics.mse < constant_mse
        assert np.all(estimates >= 0)

    def test_every_consistent_estimator_is_actually_monotone(self, split):
        """Cross-cutting invariant: every estimator that claims consistency
        scores 100% on the empirical monotonicity measure."""
        estimators = [
            SelNetEstimator(
                SelNetConfig(num_control_points=6, epochs=4, ae_pretrain_epochs=2, seed=0)
            ),
            KDEEstimator(num_samples=80),
            LSHEstimator(num_hash_bits=8, num_samples=80),
            LightGBMEstimator(monotone=True, num_trees=15),
            DLNEstimator(num_lattices=3, **FAST),
            UMNNEstimator(hidden_sizes=(16,), num_quadrature_points=8, **FAST),
        ]
        for estimator in estimators:
            estimator.fit(split)
            assert estimator.guarantees_consistency
            score = empirical_monotonicity(
                estimator,
                split.test.queries,
                split.t_max,
                num_queries=3,
                thresholds_per_query=15,
                seed=1,
            )
            assert score == pytest.approx(100.0), f"{estimator.name} violated consistency"

    def test_partitioned_selnet_end_to_end(self, split):
        config = SelNetConfig(
            num_control_points=6,
            epochs=4,
            pretrain_epochs=2,
            ae_pretrain_epochs=2,
            num_partitions=3,
            early_stopping_patience=None,
            seed=0,
        )
        estimator = SelNetEstimator(config).fit(split)
        estimates = estimator.estimate(split.test.queries, split.test.thresholds)
        assert np.all(np.isfinite(estimates)) and np.all(estimates >= 0)


class TestExperimentDriversEndToEnd:
    def test_monotonicity_table(self):
        result = run_monotonicity_table(scale=TINY, models=["KDE", "DNN", "SelNet-ct"])
        rows = {row["model"]: row for row in result.rows}
        assert rows["KDE"]["monotonicity_percent"] == pytest.approx(100.0)
        assert rows["SelNet-ct"]["monotonicity_percent"] == pytest.approx(100.0)

    def test_ablation_table_structure(self):
        result = run_ablation_table(settings=("face-cos",), scale=TINY)
        assert len(result.rows) == 3
        assert {row["model"] for row in result.rows} == {"SelNet", "SelNet-ct", "SelNet-ad-ct"}

    def test_timing_table_structure(self):
        result = run_timing_table(settings=("face-cos",), scale=TINY, models=["KDE", "DNN"])
        assert "face-cos" in result.text
        assert any(row["model"] == "DNN" for row in result.rows)

    def test_partition_sweeps(self):
        size_sweep = run_partition_size_sweep("face-cos", partition_sizes=(1, 2), scale=TINY)
        assert [row["partitions"] for row in size_sweep.rows] == [1, 2]
        method_sweep = run_partition_method_table(
            "face-cos", methods=("ct", "rp"), num_partitions=2, scale=TINY
        )
        assert [row["method"] for row in method_sweep.rows] == ["CT", "RP"]

    def test_figure4(self):
        figure = figure4_control_points(scale=TINY, num_example_queries=2)
        assert "Figure 4" in figure.text
        assert any(key.endswith("_tau") for key in figure.series)
        # ad-ct control points are identical across queries; ct's differ.
        assert figure.series["tau_spread_SelNet-ad-ct"][0] == pytest.approx(0.0, abs=1e-9)

    def test_figure5_short_stream(self):
        figure = figure5_updates(
            settings=("face-cos",), scale=TINY, num_operations=3, mae_drift_threshold=1e9
        )
        assert len(figure.series["face-cos_mse"]) == 3
        assert np.all(np.isfinite(figure.series["face-cos_mse"]))

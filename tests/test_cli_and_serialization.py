"""Tests for the command-line interface and module serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.cli import FIGURE_RUNNERS, TABLE_RUNNERS, build_parser, main
from repro.nn import feed_forward, load_module, save_module


class TestSerialization:
    def test_roundtrip_preserves_outputs(self, rng, tmp_path):
        model = feed_forward(5, [8], 1, rng=rng)
        path = tmp_path / "model.npz"
        save_module(model, path)

        clone = feed_forward(5, [8], 1, rng=np.random.default_rng(777))
        load_module(clone, path)
        x = Tensor(rng.normal(size=(4, 5)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_architecture_mismatch_rejected(self, rng, tmp_path):
        model = feed_forward(5, [8], 1, rng=rng)
        path = tmp_path / "model.npz"
        save_module(model, path)
        other = feed_forward(5, [9], 1, rng=rng)
        with pytest.raises((KeyError, ValueError)):
            load_module(other, path)

    def test_save_empty_module_rejected(self, tmp_path):
        from repro.nn import Module

        class Empty(Module):
            def forward(self, x):
                return x

        with pytest.raises(ValueError):
            save_module(Empty(), tmp_path / "empty.npz")

    def test_selnet_model_roundtrip(self, tiny_cosine_split, fast_selnet_config, rng, tmp_path):
        from repro.core import SelNetModel

        model = SelNetModel(
            input_dim=tiny_cosine_split.train.queries.shape[1],
            t_max=tiny_cosine_split.t_max,
            config=fast_selnet_config,
            rng=rng,
        )
        path = tmp_path / "selnet.npz"
        save_module(model, path)
        clone = SelNetModel(
            input_dim=tiny_cosine_split.train.queries.shape[1],
            t_max=tiny_cosine_split.t_max,
            config=fast_selnet_config,
            rng=np.random.default_rng(999),
        )
        load_module(clone, path)
        queries = tiny_cosine_split.test.queries[:5]
        thresholds = tiny_cosine_split.test.thresholds[:5]
        np.testing.assert_allclose(
            model.predict(queries, thresholds), clone.predict(queries, thresholds)
        )


class TestCLI:
    def test_runner_tables_cover_paper(self):
        assert set(TABLE_RUNNERS) == set(range(1, 12))
        assert set(FIGURE_RUNNERS) == {3, 4, 5}

    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table  3" in output and "figure 4" in output

    def test_figure3_command(self, capsys, tmp_path):
        output_file = tmp_path / "figure3.txt"
        assert main(["figure", "3", "--scale", "tiny", "--output", str(output_file)]) == 0
        assert "Figure 3" in capsys.readouterr().out
        assert "Figure 3" in output_file.read_text()

    def test_invalid_table_number(self):
        with pytest.raises(SystemExit):
            main(["table", "99"])

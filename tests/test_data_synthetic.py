"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    Dataset,
    dataset_names,
    make_dataset,
    make_face_like,
    make_fasttext_like,
    make_youtube_like,
)


class TestDatasetFactories:
    def test_names(self):
        assert set(dataset_names()) == {"face_like", "fasttext_like", "youtube_like"}

    def test_make_dataset_dispatch(self):
        dataset = make_dataset("face_like", num_vectors=100, dim=8)
        assert isinstance(dataset, Dataset)
        assert dataset.num_vectors == 100 and dataset.dim == 8

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            make_dataset("imagenet")

    def test_fasttext_like_not_normalized(self):
        dataset = make_fasttext_like(num_vectors=200, dim=10)
        norms = np.linalg.norm(dataset.vectors, axis=1)
        assert norms.std() > 0.05
        assert dataset.distances == ("cosine", "euclidean")
        assert not dataset.metadata["normalized"]

    def test_face_like_normalized(self):
        dataset = make_face_like(num_vectors=200, dim=10)
        norms = np.linalg.norm(dataset.vectors, axis=1)
        np.testing.assert_allclose(norms, np.ones(200), atol=1e-9)
        assert dataset.distances == ("cosine",)

    def test_youtube_like_normalized_high_dim(self):
        dataset = make_youtube_like(num_vectors=150, dim=40)
        norms = np.linalg.norm(dataset.vectors, axis=1)
        np.testing.assert_allclose(norms, np.ones(150), atol=1e-9)
        assert dataset.dim == 40

    def test_determinism(self):
        a = make_face_like(num_vectors=100, dim=8, seed=3)
        b = make_face_like(num_vectors=100, dim=8, seed=3)
        np.testing.assert_allclose(a.vectors, b.vectors)

    def test_different_seeds_differ(self):
        a = make_face_like(num_vectors=100, dim=8, seed=3)
        b = make_face_like(num_vectors=100, dim=8, seed=4)
        assert not np.allclose(a.vectors, b.vectors)

    def test_cluster_structure_exists(self):
        """Vectors should be clustered: nearest-neighbour distances are much
        smaller than average pairwise distances."""
        dataset = make_face_like(num_vectors=300, dim=12, num_clusters=15)
        from repro.distances import pairwise_euclidean

        matrix = pairwise_euclidean(dataset.vectors[:100], dataset.vectors[:100])
        np.fill_diagonal(matrix, np.inf)
        nearest = matrix.min(axis=1).mean()
        average = matrix[np.isfinite(matrix)].mean()
        assert nearest < 0.5 * average

    def test_finite_values(self):
        for name in dataset_names():
            dataset = make_dataset(name, num_vectors=50)
            assert np.all(np.isfinite(dataset.vectors))

"""Tests for the piece-wise linear machinery and control-point generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor
from repro.core import (
    PiecewiseLinearCurve,
    evaluate_piecewise_linear,
    fit_piecewise_linear_curve,
    is_monotone_curve,
)
from repro.core.control_points import ControlPointHead, PGenerator, TauGenerator


class TestPiecewiseLinearCurve:
    def test_evaluation_matches_interp(self, rng):
        tau = np.sort(rng.uniform(0, 1, size=8))
        p = np.sort(rng.uniform(0, 100, size=8))
        grid = rng.uniform(tau[0], tau[-1], size=30)
        np.testing.assert_allclose(
            evaluate_piecewise_linear(tau, p, grid), np.interp(grid, tau, p)
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            evaluate_piecewise_linear(np.zeros(4), np.zeros(5), np.zeros(2))

    def test_curve_call_and_properties(self, rng):
        tau = np.linspace(0, 1, 6)
        p = np.cumsum(rng.uniform(0, 1, size=6))
        curve = PiecewiseLinearCurve(tau=tau, p=p)
        assert curve.num_control_points == 6
        assert curve.is_monotone
        assert len(curve.control_points()) == 6
        assert len(curve.segment_slopes()) == 5
        assert np.all(curve.segment_slopes() >= 0)

    def test_non_monotone_detected(self):
        curve = PiecewiseLinearCurve(tau=np.array([0.0, 1.0, 2.0]), p=np.array([0.0, 5.0, 3.0]))
        assert not curve.is_monotone

    def test_is_monotone_curve_helper(self):
        assert is_monotone_curve(np.array([0, 1, 2]), np.array([0, 0, 1]))
        assert not is_monotone_curve(np.array([0, 1, 2]), np.array([1, 0, 2]))


class TestFitPiecewiseLinearCurve:
    def test_adaptive_beats_uniform_on_exponential(self, rng):
        """The Figure 3 claim: adaptive knots fit exp(t)/10 far better."""
        t = np.sort(rng.uniform(0, 10, size=120))
        y = np.exp(t) / 10.0
        adaptive = fit_piecewise_linear_curve(t, y, 8, adaptive=True)
        uniform = fit_piecewise_linear_curve(t, y, 8, adaptive=False)
        grid = np.linspace(0, 10, 300)
        truth = np.exp(grid) / 10.0
        adaptive_mse = np.mean((adaptive(grid) - truth) ** 2)
        uniform_mse = np.mean((uniform(grid) - truth) ** 2)
        assert adaptive_mse < 0.5 * uniform_mse

    def test_fits_are_monotone(self, rng):
        t = np.sort(rng.uniform(0, 5, size=60))
        y = np.cumsum(np.abs(rng.normal(size=60)))
        for adaptive in (True, False):
            curve = fit_piecewise_linear_curve(t, y, 6, adaptive=adaptive)
            assert curve.is_monotone

    def test_number_of_control_points(self, rng):
        t = np.sort(rng.uniform(0, 5, size=50))
        y = t ** 2
        curve = fit_piecewise_linear_curve(t, y, 7, adaptive=True)
        assert curve.num_control_points <= 7
        assert curve.num_control_points >= 2

    def test_rejects_too_few_points(self, rng):
        with pytest.raises(ValueError):
            fit_piecewise_linear_curve(np.array([0.0, 1.0]), np.array([0.0, 1.0]), 1)


class TestTauGenerator:
    def make_generator(self, rng, query_dependent=True, num_points=6, t_max=2.0):
        return TauGenerator(
            input_dim=5,
            num_control_points=num_points,
            t_max=t_max,
            hidden_sizes=(8,),
            query_dependent=query_dependent,
            rng=rng,
        )

    def test_output_shape_and_bounds(self, rng):
        generator = self.make_generator(rng)
        tau = generator(Tensor(rng.normal(size=(7, 5))))
        assert tau.shape == (7, 8)
        np.testing.assert_allclose(tau.data[:, 0], 0.0)
        np.testing.assert_allclose(tau.data[:, -1], 2.0)

    def test_monotone_non_decreasing(self, rng):
        generator = self.make_generator(rng)
        tau = generator(Tensor(rng.normal(size=(10, 5))))
        assert np.all(np.diff(tau.data, axis=1) >= -1e-12)

    def test_query_dependence(self, rng):
        generator = self.make_generator(rng, query_dependent=True)
        tau = generator(Tensor(rng.normal(size=(2, 5)) * 3))
        assert not np.allclose(tau.data[0], tau.data[1])

    def test_ablation_is_query_independent(self, rng):
        generator = self.make_generator(rng, query_dependent=False)
        tau = generator(Tensor(rng.normal(size=(2, 5)) * 3))
        np.testing.assert_allclose(tau.data[0], tau.data[1])

    def test_invalid_t_max(self, rng):
        with pytest.raises(ValueError):
            TauGenerator(input_dim=3, num_control_points=4, t_max=0.0, rng=rng)

    def test_gradient_flows_to_network(self, rng):
        generator = self.make_generator(rng)
        tau = generator(Tensor(rng.normal(size=(4, 5))))
        tau.sum().backward()
        grads = [p.grad for p in generator.parameters()]
        assert any(g is not None and np.any(g != 0) for g in grads)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), t_max=st.floats(0.1, 50.0))
    def test_property_tau_always_valid(self, seed, t_max):
        """Property: for any weights/input, tau is a valid monotone grid on [0, t_max]."""
        rng = np.random.default_rng(seed)
        generator = TauGenerator(4, 5, t_max=t_max, hidden_sizes=(6,), rng=rng)
        tau = generator(Tensor(rng.normal(size=(3, 4)) * 10)).data
        assert np.all(np.diff(tau, axis=1) >= -1e-9)
        np.testing.assert_allclose(tau[:, 0], 0.0)
        np.testing.assert_allclose(tau[:, -1], t_max)


class TestPGenerator:
    def make_generator(self, rng, num_points=6):
        return PGenerator(input_dim=5, num_control_points=num_points, embedding_dim=4, hidden_sizes=(12,), rng=rng)

    def test_output_shape(self, rng):
        generator = self.make_generator(rng)
        p = generator(Tensor(rng.normal(size=(3, 5))))
        assert p.shape == (3, 8)

    def test_non_decreasing(self, rng):
        generator = self.make_generator(rng)
        p = generator(Tensor(rng.normal(size=(10, 5)) * 5))
        assert np.all(np.diff(p.data, axis=1) >= -1e-12)

    def test_non_negative(self, rng):
        generator = self.make_generator(rng)
        p = generator(Tensor(rng.normal(size=(10, 5))))
        assert np.all(p.data >= -1e-12)

    def test_gradients_reach_decoders(self, rng):
        generator = self.make_generator(rng)
        p = generator(Tensor(rng.normal(size=(4, 5))))
        p.sum().backward()
        decoder_grads = [decoder.weight.grad for decoder in generator.decoders]
        assert any(grad is not None for grad in decoder_grads)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_p_monotone_for_any_weights(self, seed):
        """Property (Lemma 1 premise): p is non-decreasing for any weights."""
        rng = np.random.default_rng(seed)
        generator = PGenerator(3, 4, embedding_dim=3, hidden_sizes=(5,), rng=rng)
        p = generator(Tensor(rng.normal(size=(2, 3)) * 10)).data
        assert np.all(np.diff(p, axis=1) >= -1e-9)


class TestControlPointHead:
    def test_joint_output(self, rng):
        head = ControlPointHead(
            input_dim=6,
            num_control_points=5,
            t_max=1.5,
            embedding_dim=4,
            tau_hidden_sizes=(8,),
            p_hidden_sizes=(10,),
            rng=rng,
        )
        tau, p = head(Tensor(rng.normal(size=(4, 6))))
        assert tau.shape == p.shape == (4, 7)
        assert np.all(np.diff(tau.data, axis=1) >= -1e-12)
        assert np.all(np.diff(p.data, axis=1) >= -1e-12)

"""Tests for the distributed pipeline tier: process executors, cross-process
store locking, size-bounded GC, pinned-value release, and the scale /
cross-seed sweep generators.

Contract under test:

* two ``ArtifactStore`` instances in separate processes racing
  ``get_or_build`` on one spec -> exactly one builds, the other blocks on
  the per-hash file lock and then disk-hits, and the manifest is never torn;
* the ``process`` executor's results are byte-identical (modulo wall-clock
  measurement fields) to the ``thread`` executor's;
* ``gc`` never sweeps the temp dir of a live builder, and ``max_bytes``
  trims least-recently-used artifacts first;
* the per-labeler engine-worker split is recomputed when the ready set
  changes, so a labeler running alone in a later wave gets full width.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Tuple

import pytest

from repro.cli import _eval_digests, main
from repro.experiments import TINY
from repro.experiments.sweeps import (
    run_scale_sweep,
    run_seed_variance,
    scaled_replica,
)
from repro.pipeline import (
    ArtifactStore,
    DatasetSpec,
    EvalSpec,
    ExperimentSpec,
    LOCKS_DIR,
    MANIFEST_FILE,
    PipelineRunner,
    Spec,
    TrainSpec,
    WorkloadSpec,
    use_store,
)

try:
    import fcntl
except ImportError:  # pragma: no cover - POSIX-only test module
    fcntl = None


# ---------------------------------------------------------------------- #
# Cross-process get_or_build race (module level: child processes must be
# able to import these)
# ---------------------------------------------------------------------- #
class SlowDatasetSpec(DatasetSpec):
    """A dataset whose build is slow enough for a second process to race it."""

    def build(self, store, **options):
        time.sleep(0.6)
        return super().build(store, **options)


def _race_get_or_build(root: str, barrier, results) -> None:
    store = ArtifactStore(root)
    spec = SlowDatasetSpec(name="face_like", num_vectors=300, dim=8, seed=3)
    barrier.wait()
    value, info = store.get_or_build_info(spec)
    results.put(
        {
            "pid": os.getpid(),
            "cached": info.cached,
            "num_vectors": int(value.vectors.shape[0]),
        }
    )


@pytest.mark.skipif(fcntl is None, reason="needs POSIX file locks")
def test_cross_process_race_builds_exactly_once(tmp_path):
    root = tmp_path / "race-store"
    barrier = multiprocessing.Barrier(2)
    results = multiprocessing.Queue()
    workers = [
        multiprocessing.Process(
            target=_race_get_or_build, args=(str(root), barrier, results)
        )
        for _ in range(2)
    ]
    for worker in workers:
        worker.start()
    outcomes = [results.get(timeout=60) for _ in workers]
    for worker in workers:
        worker.join(timeout=60)
        assert worker.exitcode == 0

    # Exactly one process built; the loser blocked on the lock, re-checked
    # the manifest and replayed from disk.
    cached = sorted((outcome["cached"] for outcome in outcomes), key=str)
    assert cached == [False, "disk"]
    assert all(outcome["num_vectors"] == 300 for outcome in outcomes)

    # No torn manifest: the directory holds a complete, parseable manifest
    # and no leftover temp dirs.
    spec = SlowDatasetSpec(name="face_like", num_vectors=300, dim=8, seed=3)
    artifact_dir = root / spec.kind / spec.spec_hash
    manifest = json.loads((artifact_dir / MANIFEST_FILE).read_text())
    assert manifest["hash"] == spec.spec_hash
    leftovers = [p for p in (root / spec.kind).iterdir() if p.name.startswith(".tmp-")]
    assert leftovers == []


# ---------------------------------------------------------------------- #
# Executor parity
# ---------------------------------------------------------------------- #
def _smoke_experiment_spec(seed: int = 0) -> Tuple[ExperimentSpec, list]:
    workload = WorkloadSpec.for_setting("face-cos", TINY, seed=seed)
    evals = [
        EvalSpec(train=TrainSpec.create(workload, model, params), seed=seed)
        for model, params in (("KDE", {"num_samples": 32}), ("LightGBM-m", {}))
    ]
    return ExperimentSpec(name="executor-parity", evals=tuple(evals)), evals


class TestProcessExecutor:
    def test_process_matches_thread_bitwise(self, tmp_path):
        experiment, evals = _smoke_experiment_spec()
        thread = PipelineRunner(
            store=ArtifactStore(tmp_path / "thread"), executor="thread", num_workers=2
        ).run(experiment)
        process = PipelineRunner(
            store=ArtifactStore(tmp_path / "process"), executor="process", num_workers=2
        ).run(experiment)
        assert len(thread.report.stages) == len(process.report.stages)
        assert process.report.executor == "process"
        for spec in evals:
            left, right = thread.value(spec), process.value(spec)
            # Everything the estimator computed is bit-identical; only the
            # wall-clock measurement fields may differ between runs.
            assert left.test_metrics.mse == right.test_metrics.mse
            assert left.test_metrics.mae == right.test_metrics.mae
            assert left.validation_metrics.mse == right.validation_metrics.mse
            assert left.model_name == right.model_name

    def test_process_matches_thread_for_autodiff_models(self, tmp_path):
        # The process-backend analogue of the thread pool's parallel==serial
        # test: SelNet-ct exercises the autodiff tape, DNN the plain neural
        # path — worker processes must reproduce the thread backend exactly.
        import dataclasses

        from repro.eval import train_specs_for_models

        fast_scale = dataclasses.replace(
            TINY,
            selnet_epochs=2,
            selnet_pretrain_epochs=1,
            baseline_epochs=2,
            num_control_points=4,
        )
        workload = WorkloadSpec.for_setting("face-cos", fast_scale, seed=0)
        specs = train_specs_for_models(
            fast_scale, workload, include=["DNN", "SelNet-ct"]
        )
        evals = tuple(EvalSpec(train=spec) for spec in specs.values())
        experiment = ExperimentSpec(name="autodiff-parity", evals=evals)
        thread = PipelineRunner(
            store=ArtifactStore(tmp_path / "thread"), executor="thread", num_workers=1
        ).run(experiment)
        process = PipelineRunner(
            store=ArtifactStore(tmp_path / "process"), executor="process", num_workers=4
        ).run(experiment)
        for spec in evals:
            left, right = thread.value(spec), process.value(spec)
            assert left.test_metrics.mse == right.test_metrics.mse
            assert left.validation_metrics.mae == right.validation_metrics.mae

    def test_process_warm_replay_all_cached(self, tmp_path):
        experiment, _ = _smoke_experiment_spec()
        store_root = tmp_path / "store"
        cold = PipelineRunner(
            store=ArtifactStore(store_root), executor="process", num_workers=2
        ).run(experiment)
        assert cold.report.cache_misses == len(cold.report.stages)
        warm = PipelineRunner(
            store=ArtifactStore(store_root), executor="process", num_workers=2
        ).run(experiment)
        assert warm.report.all_cached

    def test_cluster_executor_reuses_pool_across_runs(self, tmp_path):
        experiment, _ = _smoke_experiment_spec()
        with PipelineRunner(
            store=ArtifactStore(tmp_path / "store"), executor="cluster", num_workers=2
        ) as runner:
            cold = runner.run(experiment)
            assert runner._cluster_pool is not None
            pool = runner._cluster_pool
            warm = runner.run(experiment)
            assert runner._cluster_pool is pool
        assert runner._cluster_pool is None
        assert cold.report.cache_misses > 0
        assert warm.report.all_cached

    def test_process_executor_requires_persistent_store(self):
        with pytest.raises(ValueError, match="persistent"):
            PipelineRunner(executor="process")
        with pytest.raises(ValueError, match="unknown executor"):
            PipelineRunner(executor="fiber")

    def test_cli_smoke_process_digests_match_thread(self, tmp_path, capsys):
        thread_store = tmp_path / "store-thread"
        process_store = tmp_path / "store-process"
        assert main(["run", "--smoke", "--store", str(thread_store)]) == 0
        assert (
            main(
                ["run", "--smoke", "--store", str(process_store), "--executor", "process"]
            )
            == 0
        )
        capsys.readouterr()
        left = _eval_digests(ArtifactStore(thread_store))
        right = _eval_digests(ArtifactStore(process_store))
        assert left and left == right

    def test_cli_refuses_process_executor_without_store(self):
        with pytest.raises(SystemExit, match="artifact store"):
            main(["run", "--smoke", "--no-store", "--executor", "process"])


# ---------------------------------------------------------------------- #
# Store hardening: gc lock probe, max-bytes LRU, pinned-value release
# ---------------------------------------------------------------------- #
@pytest.mark.skipif(fcntl is None, reason="needs POSIX file locks")
def test_gc_skips_temp_dir_of_live_builder(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    spec = DatasetSpec(name="face_like", num_vectors=200, dim=6, seed=1)
    store.get_or_build(spec)

    # Fake an in-progress build: a temp dir for some other spec hash whose
    # builder currently holds the per-hash lock (flock conflicts between
    # two descriptors even within one process).
    building_hash = "feedfacefeedface"
    temp_dir = store.root / "dataset" / f".tmp-{building_hash}-deadbeef"
    temp_dir.mkdir(parents=True)
    (temp_dir / "payload.bin").write_bytes(b"partial")
    lock_path = store.root / LOCKS_DIR / "dataset" / f"{building_hash}.lock"
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    holder = os.open(str(lock_path), os.O_WRONLY | os.O_CREAT, 0o644)
    try:
        fcntl.flock(holder, fcntl.LOCK_EX)
        summary = store.gc(kinds=["dataset"], older_than_seconds=10_000.0)
        assert summary["temp_dirs_swept"] == 0
        assert temp_dir.is_dir()
    finally:
        fcntl.flock(holder, fcntl.LOCK_UN)
        os.close(holder)

    # Builder gone -> the next gc reclaims the orphan.
    summary = store.gc(kinds=["dataset"], older_than_seconds=10_000.0)
    assert summary["temp_dirs_swept"] == 1
    assert not temp_dir.exists()


def test_gc_max_bytes_evicts_least_recently_used(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    specs = [DatasetSpec(name="face_like", num_vectors=200 + 50 * i, dim=6, seed=i) for i in range(3)]
    for spec in specs:
        store.get_or_build(spec)
    # Establish recency oldest -> newest by touching manifests with explicit
    # mtimes (the store refreshes mtime on every load).
    now = time.time()
    for age, spec in zip((3000, 2000, 1000), specs):
        manifest = store.root / spec.kind / spec.spec_hash / MANIFEST_FILE
        os.utime(manifest, (now - age, now - age))

    sizes = {
        entry["hash"]: entry["size_bytes"] for entry in store.list_artifacts()
    }
    total = sum(sizes.values())
    budget = total - 1  # force evicting exactly the single oldest artifact
    summary = store.gc(max_bytes=budget)
    removed_hashes = {entry["hash"] for entry in summary["removed"]}
    assert removed_hashes == {specs[0].spec_hash}
    remaining = sum(entry["size_bytes"] for entry in store.list_artifacts())
    assert remaining <= budget

    # A dry run reports without deleting.
    summary = store.gc(max_bytes=0, dry_run=True)
    assert len(summary["removed"]) == 2
    assert len(store.list_artifacts()) == 2

    # max_bytes=0 clears everything that is unlocked.
    summary = store.gc(max_bytes=0)
    assert store.list_artifacts() == []


def test_unpinned_store_serves_disk_hits_and_release(tmp_path):
    spec = DatasetSpec(name="face_like", num_vectors=150, dim=5, seed=2)

    unpinned = ArtifactStore(tmp_path / "store", pin_values=False)
    first_value, first = unpinned.get_or_build_info(spec)
    assert first.cached is False
    _, second = unpinned.get_or_build_info(spec)
    assert second.cached == "disk"  # nothing pinned in memory after persist

    pinned = ArtifactStore(tmp_path / "store")
    _, info = pinned.get_or_build_info(spec)
    assert info.cached == "disk"
    _, info = pinned.get_or_build_info(spec)
    assert info.cached == "memory"
    assert pinned.release(spec) is True
    assert pinned.release(spec) is False  # already released
    _, info = pinned.get_or_build_info(spec)
    assert info.cached == "disk"

    memory_only = ArtifactStore.memory()
    memory_only.get_or_build(spec)
    with pytest.raises(ValueError, match="memory-only"):
        memory_only.release(spec)


# ---------------------------------------------------------------------- #
# Engine-split recomputation (satellite: later-wave labelers get full width)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _ProbeDataset(Spec):
    tag: str
    build_seconds: float = 0.0

    kind: ClassVar[str] = "dataset"

    def describe(self) -> str:
        return f"dataset:probe-{self.tag}"

    def build(self, store, **options):
        if self.build_seconds:
            time.sleep(self.build_seconds)
        return {"tag": self.tag}

    def save_artifact(self, directory, value) -> None:
        (directory / "value.json").write_text(json.dumps(value))

    def load_artifact(self, directory, store):
        return json.loads((directory / "value.json").read_text())


@dataclass(frozen=True)
class _ProbeWorkload(Spec):
    tag: str
    dataset: Any = None

    kind: ClassVar[str] = "workload"

    def describe(self) -> str:
        return f"workload:probe-{self.tag}"

    def dependencies(self) -> Tuple[Spec, ...]:
        return () if self.dataset is None else (self.dataset,)

    def build(self, store, num_workers=None, **options):
        if self.dataset is not None:
            store.get_or_build(self.dataset)
        return {"engine_workers": num_workers}

    def save_artifact(self, directory, value) -> None:
        (directory / "value.json").write_text(json.dumps(value))

    def load_artifact(self, directory, store):
        return json.loads((directory / "value.json").read_text())


class TestEngineSplitRecompute:
    def test_concurrent_labelers_split_engine_budget(self, tmp_path):
        # Two dependency-free labelers are both in the first ready wave, so
        # each submission sees the other (ready or in flight) and takes half
        # the engine budget.
        store = ArtifactStore(tmp_path / "store")
        labelers = tuple(_ProbeWorkload(tag=f"w{i}") for i in range(2))
        outcome = PipelineRunner(store=store, num_workers=4).run(
            ExperimentSpec(name="split-now", extra_stages=labelers)
        )
        widths = sorted(
            outcome.values[labeler.spec_hash]["engine_workers"] for labeler in labelers
        )
        assert widths == [2, 2]

    def test_lone_later_labeler_gets_full_engine_width(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        early = _ProbeWorkload(tag="early")
        later = _ProbeWorkload(
            tag="late", dataset=_ProbeDataset(tag="late", build_seconds=0.4)
        )
        outcome = PipelineRunner(store=store, num_workers=4).run(
            ExperimentSpec(name="split-later", extra_stages=(early, later))
        )
        # Wave 1: the early labeler runs alongside only the late *dataset*
        # build -> no other labeler can overlap -> full engine width.  Wave 2
        # (after the early labeler and the dataset finished): the late
        # labeler is the only stage left -> full width too.  The old static
        # whole-DAG split pinned both to total // 2 forever.
        assert outcome.values[early.spec_hash]["engine_workers"] is None
        assert outcome.values[later.spec_hash]["engine_workers"] is None


# ---------------------------------------------------------------------- #
# Sweep generators
# ---------------------------------------------------------------------- #
class TestSweeps:
    def test_scaled_replica_changes_only_the_database_size(self):
        replica = scaled_replica(TINY, 5000)
        assert replica.num_vectors == 5000
        assert replica.name == "tiny-n5000"
        assert replica.num_queries == TINY.num_queries
        assert replica.selnet_epochs == TINY.selnet_epochs
        with pytest.raises(ValueError):
            scaled_replica(TINY, 0)

    def test_scale_sweep_shares_stages_and_reports_curve(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with use_store(store):
            result = run_scale_sweep(
                "face-cos",
                num_vectors=(300, 600),
                scale=TINY,
                models=("KDE",),
                seed=0,
            )
        assert [row["num_vectors"] for row in result.rows] == [300, 600]
        assert all(row["model"] == "KDE" for row in result.rows)
        assert all("train_cpu_seconds" in row for row in result.rows)
        # one dataset + workload + train + eval per point
        assert len(result.pipeline_report.stages) == 8
        # Growing the curve reuses every stage of the lower points.
        with use_store(store):
            grown = run_scale_sweep(
                "face-cos",
                num_vectors=(300, 600, 900),
                scale=TINY,
                models=("KDE",),
                seed=0,
            )
        replayed = [s for s in grown.pipeline_report.stages if s.cached]
        assert len(replayed) >= 2  # the shared lower-scale terminal stages

    def test_seed_variance_reports_mean_and_std(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with use_store(store):
            result = run_seed_variance(
                "face-cos", scale=TINY, models=("KDE",), seeds=(0, 1)
            )
        (row,) = result.rows
        assert row["seeds"] == [0, 1]
        assert row["mse_std"] >= 0.0
        assert "±" in result.text
        # The dataset stage is shared across seeds: 2 seeds produce
        # 1 dataset + 2 x (workload, train, eval) = 7 stages, not 8.
        assert len(result.pipeline_report.stages) == 7

    def test_cli_sweep_seeds_smoke(self, tmp_path, capsys):
        code = main(
            [
                "sweep",
                "seeds",
                "--setting",
                "face-cos",
                "--scale",
                "tiny",
                "--models",
                "KDE",
                "--seeds",
                "0,1",
                "--store",
                str(tmp_path / "store"),
                "--stats-json",
                str(tmp_path / "stats.json"),
            ]
        )
        assert code == 0
        payload = json.loads((tmp_path / "stats.json").read_text())
        assert payload["axis"] == "seeds"
        assert payload["pipeline"]["cache_misses"] > 0
        out = capsys.readouterr().out
        assert "Cross-seed variance" in out

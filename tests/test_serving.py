"""Tests for the serving subsystem and the lifecycle CLI subcommands."""

from __future__ import annotations

import numpy as np
import pytest

from repro import UpdateNotSupportedError, create_estimator
from repro.cli import main
from repro.serving import (
    CachedCurve,
    CurveCache,
    EstimationService,
    MicroBatcher,
    iter_microbatches,
    run_serving_benchmark,
)
from repro.serving.cache import QuantizedCurve


@pytest.fixture(scope="module")
def model_dir(tiny_cosine_split, tmp_path_factory):
    """Two fitted estimators saved under one model directory."""
    directory = tmp_path_factory.mktemp("served-models")
    kde = create_estimator("kde", num_samples=64, seed=0).fit(tiny_cosine_split)
    kde.save(directory / "kde", metadata={"setting": "face-cos", "scale": "tiny", "seed": 0})
    gbdt = create_estimator("lightgbm-m", num_trees=6, seed=0).fit(tiny_cosine_split)
    gbdt.save(directory / "gbdt", metadata={"setting": "face-cos", "scale": "tiny", "seed": 0})
    return directory


class TestCurveCache:
    def test_hit_miss_and_lru_eviction(self):
        cache = CurveCache(capacity=2)
        grid = np.linspace(0.0, 1.0, 4)
        queries = [np.full(3, float(i)) for i in range(3)]
        assert cache.get("m", queries[0]) is None
        for query in queries[:2]:
            cache.put("m", query, CachedCurve(grid, grid * 2.0))
        assert cache.get("m", queries[0]) is not None
        cache.put("m", queries[2], CachedCurve(grid, grid))  # evicts queries[1]
        assert cache.get("m", queries[1]) is None
        stats = cache.stats()
        assert stats["evictions"] == 1 and stats["size"] == 2
        assert 0.0 < stats["hit_rate"] < 1.0

    @pytest.mark.parametrize("capacity", [0, -1, -8])
    def test_nonpositive_capacity_disables_cache(self, capacity):
        cache = CurveCache(capacity=capacity)
        curve = CachedCurve(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        for i in range(3):
            cache.put("m", np.full(2, float(i)), curve)
        assert len(cache) == 0
        assert cache.get("m", np.zeros(2)) is None
        stats = cache.stats()
        assert stats["size"] == 0 and stats["evictions"] == 0
        assert stats["hits"] == 0 and stats["misses"] == 1

    def test_lru_order_under_mixed_get_put_traffic(self):
        cache = CurveCache(capacity=3)
        grid = np.array([0.0, 1.0])
        queries = [np.full(2, float(i)) for i in range(4)]
        for query in queries[:3]:
            cache.put("m", query, CachedCurve(grid, grid))
        # Touch 0 (get) and re-put 1: recency is now [2, 0, 1] oldest-first.
        assert cache.get("m", queries[0]) is not None
        cache.put("m", queries[1], CachedCurve(grid, grid * 3.0))
        cache.put("m", queries[3], CachedCurve(grid, grid))  # evicts 2, not 0 or 1
        assert cache.get("m", queries[2]) is None
        assert cache.get("m", queries[0]) is not None
        entry = cache.get("m", queries[1])
        assert entry is not None and entry(1.0) == pytest.approx(3.0)  # re-put value won
        cache.put("m", np.full(2, 9.0), CachedCurve(grid, grid))  # now 3 is the oldest
        assert cache.get("m", queries[3]) is None
        assert cache.stats()["evictions"] == 2

    def test_configurable_key_decimals(self):
        curve = CachedCurve(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        coarse = CurveCache(capacity=8, decimals=2)
        coarse.put("m", np.array([0.12345, 1.0]), curve)
        assert coarse.get("m", np.array([0.12001, 1.0])) is not None  # rounds to 0.12
        assert coarse.get("m", np.array([0.13, 1.0])) is None
        precise = CurveCache(capacity=8)  # default 10 decimals keeps them apart
        precise.put("m", np.array([0.12345, 1.0]), curve)
        assert precise.get("m", np.array([0.12001, 1.0])) is None
        assert coarse.stats()["decimals"] == 2

    def test_invalidate_per_model(self):
        cache = CurveCache(capacity=8)
        curve = CachedCurve(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        cache.put("a", np.zeros(2), curve)
        cache.put("b", np.zeros(2), curve)
        assert cache.invalidate("a") == 1
        assert cache.get("b", np.zeros(2)) is not None

    def test_max_bytes_budget_evicts_lru(self):
        grid = np.linspace(0.0, 1.0, 64)
        # Measure what entries actually cost (first put also interns the grid).
        probe = CurveCache(capacity=1000)
        probe.put("m", np.zeros(2), CachedCurve(grid, grid * 2.0))
        first = probe.bytes
        probe.put("m", np.ones(2), CachedCurve(grid, grid * 2.0))
        marginal = probe.bytes - first
        cache = CurveCache(capacity=1000, max_bytes=first + 2 * marginal)  # room for 3
        queries = [np.full(2, float(i)) for i in range(4)]
        for query in queries:
            cache.put("m", query, CachedCurve(grid, grid * 2.0))
        assert len(cache) == 3
        assert cache.stats()["evictions"] == 1
        assert cache.get("m", queries[0]) is None  # the LRU entry paid for it
        assert cache.get("m", queries[3]) is not None
        assert cache.bytes <= cache.max_bytes

    def test_grid_interning_counts_shared_bytes_once(self):
        grid = np.linspace(0.0, 1.0, 128)
        cache = CurveCache(capacity=16)
        for i in range(8):
            # distinct array objects, byte-identical grid values
            cache.put("m", np.full(2, float(i)), CachedCurve(grid.copy(), grid * i))
        stats = cache.stats()
        assert stats["grids"] == 1
        one = cache.get("m", np.zeros(2))
        other = cache.get("m", np.ones(2))
        assert one.thresholds is other.thresholds  # literally one shared array
        # 8 value payloads but a single accounted grid: far below 8 * (grid + values)
        assert cache.bytes < 8 * 2 * grid.nbytes
        # releasing the last referencing entry releases the grid bytes too
        cache.invalidate("m")
        assert cache.bytes == 0 and cache.stats()["grids"] == 0

    def test_quantized_curves_shrink_entries_within_budget(self):
        grid = np.linspace(0.0, 2.0, 256)
        values = np.expm1(np.linspace(0.0, 10.0, 256))  # counts spanning decades
        cache = CurveCache(capacity=8, quantize_bits=8)
        cache.put("m", np.zeros(2), CachedCurve(grid, values))
        curve = cache.get("m", np.zeros(2))
        assert isinstance(curve, QuantizedCurve)
        assert curve.bits == 8
        assert curve.payload_nbytes < values.nbytes / 4  # 1 B/point vs 8
        # log1p-domain codes keep the *relative* error uniform across decades
        scale = np.maximum(np.abs(values), 1.0)
        assert np.max(np.abs(curve.values - values) / scale) < 2e-2
        probes = grid[::7] + 1e-3
        np.testing.assert_allclose(
            curve.at(probes), CachedCurve(grid, values).at(probes), rtol=2.5e-2, atol=1.0
        )

    def test_interpolation(self):
        curve = CachedCurve(np.array([0.0, 1.0]), np.array([0.0, 10.0]))
        assert curve(0.5) == pytest.approx(5.0)
        np.testing.assert_allclose(curve.at(np.array([0.0, 0.25, 1.0])), [0.0, 2.5, 10.0])


class TestMicroBatching:
    def test_iter_microbatches_covers_everything(self):
        queries = np.arange(20, dtype=np.float64).reshape(10, 2)
        thresholds = np.linspace(0.0, 1.0, 10)
        batches = list(iter_microbatches(queries, thresholds, max_batch_size=4))
        assert [len(batch) for batch in batches] == [4, 4, 2]
        reassembled = np.concatenate([batch.positions for batch in batches])
        np.testing.assert_array_equal(reassembled, np.arange(10))

    def test_iter_microbatches_validates_shapes(self):
        with pytest.raises(ValueError):
            list(iter_microbatches(np.zeros(3), np.zeros(3), 2))
        with pytest.raises(ValueError):
            list(iter_microbatches(np.zeros((3, 2)), np.zeros(4), 2))
        with pytest.raises(ValueError):
            list(iter_microbatches(np.zeros((3, 2)), np.zeros(3), 0))

    @pytest.mark.parametrize("queries", [np.empty((0, 5)), np.empty(0), []])
    def test_iter_microbatches_accepts_empty_batches(self, queries):
        assert list(iter_microbatches(queries, np.empty(0), 4)) == []

    def test_microbatcher_flushes_in_submission_order(self):
        calls = []

        def estimate(queries, thresholds):
            calls.append(len(thresholds))
            return thresholds * 10.0

        batcher = MicroBatcher(estimate, max_batch_size=3)
        for i in range(7):
            batcher.submit(np.zeros(2), float(i))
        results = batcher.flush()
        np.testing.assert_allclose(results, np.arange(7) * 10.0)
        assert calls == [3, 3, 1]
        assert batcher.batches_flushed == 3


class TestEstimationService:
    def test_lists_and_lazily_loads_models(self, model_dir):
        service = EstimationService(model_dir)
        assert service.available_models() == ["gbdt", "kde"]
        described = service.describe_models()
        assert described["kde"]["registry_name"] == "kde"
        assert service.stats()["models_loaded"] == []
        service.get("kde")
        assert service.stats()["models_loaded"] == ["kde"]

    def test_unknown_model_rejected(self, model_dir):
        with pytest.raises(KeyError, match="unknown model"):
            EstimationService(model_dir).get("nope")
        with pytest.raises(KeyError, match="no model_dir"):
            EstimationService().get("anything")

    def test_uncached_estimates_match_direct_calls(self, model_dir, tiny_cosine_split):
        service = EstimationService(model_dir, max_batch_size=7)
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        served = service.estimate("kde", queries, thresholds, use_cache=False)
        direct = service.get("kde").estimate(queries, thresholds)
        np.testing.assert_array_equal(served, direct)
        stats = service.stats()["per_model"]["kde"]
        assert stats["requests"] == len(thresholds)
        assert stats["batches"] == -(-len(thresholds) // 7)

    def test_curve_cache_hits_on_repeated_queries(self, model_dir, tiny_cosine_split):
        service = EstimationService(model_dir, cache_capacity=64, curve_resolution=48)
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        first = service.estimate("kde", queries, thresholds)
        second = service.estimate("kde", queries, thresholds)
        np.testing.assert_allclose(first, second)
        stats = service.stats()["per_model"]["kde"]
        assert stats["cache_hits"] >= len(thresholds)
        assert stats["curve_builds"] == len(np.unique(queries, axis=0))
        assert service.cache.hit_rate > 0.0

    def test_cached_answers_track_the_true_curve(self, model_dir, tiny_cosine_split):
        service = EstimationService(model_dir, curve_resolution=256)
        queries = tiny_cosine_split.test.queries[:6]
        thresholds = tiny_cosine_split.test.thresholds[:6]
        cached = service.estimate("gbdt", queries, thresholds, use_cache=True)
        direct = service.estimate("gbdt", queries, thresholds, use_cache=False)
        scale = np.maximum(np.abs(direct), 1.0)
        assert np.max(np.abs(cached - direct) / scale) < 0.25

    @pytest.mark.parametrize("use_cache", [True, False])
    def test_empty_request_batch_returns_empty(self, model_dir, use_cache):
        service = EstimationService(model_dir)
        for queries in (np.empty((0, 10)), np.empty(0), []):
            result = service.estimate("kde", queries, np.empty(0), use_cache=use_cache)
            assert result.shape == (0,) and result.dtype == np.float64
        # stats stay untouched by idle ticks
        assert service.stats()["per_model"]["kde"]["requests"] == 0

    def test_service_cache_key_decimals_config(self, model_dir, tiny_cosine_split):
        service = EstimationService(model_dir, cache_key_decimals=2)
        assert service.cache.decimals == 2
        query = tiny_cosine_split.test.queries[:1]
        threshold = tiny_cosine_split.test.thresholds[:1]
        service.estimate("kde", query, threshold)
        # A perturbation below the rounding quantum reuses the cached curve.
        service.estimate("kde", query + 1e-6, threshold)
        stats = service.stats()["per_model"]["kde"]
        assert stats["curve_builds"] == 1 and stats["cache_hits"] == 1

    def test_precision_and_cache_budget_knobs(self, model_dir, tiny_cosine_split):
        service = EstimationService(
            model_dir,
            kernel_dtype="float32",
            cache_max_bytes=64 * 1024,
            cache_quantize_bits=8,
            curve_resolution=256,
        )
        assert service.kernel_dtype == "float32"
        assert service.cache.max_bytes == 64 * 1024
        assert service.cache.quantize_bits == 8
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        served = service.estimate("kde", queries, thresholds)
        direct = service.get("kde").estimate(queries, thresholds)
        scale = np.maximum(np.abs(direct), 1.0)
        assert np.max(np.abs(served - direct) / scale) < 0.25
        stats = service.stats()
        assert stats["kernel_dtype"] == "float32"
        assert 0 < stats["cache"]["bytes"] <= 64 * 1024
        # the compiled-kernel tier rides the metrics registry for /metrics
        text = service.metrics.snapshot().to_prometheus()
        assert "repro_cache_bytes" in text
        assert 'repro_kernel_dtype{model="kde",dtype="float32"}' in text

    def test_in_memory_models_and_curves(self, model_dir, tiny_cosine_split):
        service = EstimationService()
        estimator = create_estimator("kde", num_samples=64, seed=0).fit(tiny_cosine_split)
        service.add_model("mem", estimator)
        assert "mem" in service.available_models()
        query = tiny_cosine_split.test.queries[0]
        curve = service.curve("mem", query)  # default grid: cached for estimates
        np.testing.assert_allclose(
            curve.values, estimator.selectivity_curve(query, curve.thresholds)
        )
        service.estimate("mem", query[None, :], np.asarray([curve.thresholds[3]]))
        assert service.stats()["per_model"]["mem"]["cache_hits"] == 1

    def test_explicit_curve_grid_is_not_cached(self, model_dir, tiny_cosine_split):
        service = EstimationService()
        estimator = create_estimator("kde", num_samples=64, seed=0).fit(tiny_cosine_split)
        service.add_model("mem", estimator)
        query = tiny_cosine_split.test.queries[0]
        # A coarse caller-supplied grid must not enter the shared cache —
        # it would degrade every later estimate for this query.
        service.curve("mem", query, np.array([0.0, tiny_cosine_split.t_max]))
        assert len(service.cache) == 0

    def test_threshold_beyond_cached_grid_rebuilds_curve(self, model_dir, tiny_cosine_split):
        service = EstimationService(model_dir, curve_resolution=64)
        query = tiny_cosine_split.test.queries[:1]
        small, large = 0.05, float(tiny_cosine_split.t_max)
        service.estimate("kde", query, np.asarray([small]))  # curve only up to ~1.05*small
        served = service.estimate("kde", query, np.asarray([large]))
        direct = service.get("kde").estimate(query, np.asarray([large]))
        # Without range-aware cache misses this would clamp to the tiny grid
        # and silently underestimate by orders of magnitude.
        assert abs(served[0] - direct[0]) / max(abs(direct[0]), 1.0) < 0.25
        stats = service.stats()["per_model"]["kde"]
        assert stats["curve_builds"] == 2  # the out-of-range hit forced a rebuild

    def test_update_routing(self, model_dir, tiny_cosine_split, fast_selnet_config):
        from dataclasses import asdict

        service = EstimationService(model_dir)
        with pytest.raises(UpdateNotSupportedError):
            service.update("kde", inserts=np.zeros((1, 10)))

        params = asdict(fast_selnet_config)
        params.update(epochs=2, update_max_epochs=1, update_mae_drift_threshold=1e9)
        incremental = create_estimator("selnet-inc", **params).fit(tiny_cosine_split)
        service.add_model("inc", incremental)
        query = tiny_cosine_split.test.queries[:1]
        service.estimate("inc", query, tiny_cosine_split.test.thresholds[:1])
        assert len(service.cache) > 0
        reports = service.update("inc", inserts=np.zeros((2, 10)))
        assert len(reports) == 1
        assert service.stats()["per_model"]["inc"]["updates"] == 1
        assert len(service.cache) == 0  # the update invalidated the cached curves

    def test_benchmark_report(self, model_dir, tiny_cosine_split):
        service = EstimationService(model_dir, cache_capacity=128)
        report = run_serving_benchmark(
            service,
            "kde",
            tiny_cosine_split.test.queries,
            tiny_cosine_split.test.thresholds,
            num_requests=200,
            arrival_batch=16,
            seed=1,
        )
        assert report.num_requests == 200
        assert report.requests_per_second > 0
        assert 0.0 <= report.cache_hit_rate <= 1.0
        assert "throughput" in report.text and "cache hit rate" in report.text


class TestLifecycleCLI:
    def test_models_command(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "selnet-inc" in out and "updates" in out and "kde" in out

    def test_models_command_json(self, capsys):
        import json

        assert main(["models", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in payload["registry"]}
        assert "selnet" in names and "lsh" in names

    def test_train_estimate_serve_bench_roundtrip(self, capsys, tmp_path):
        out = tmp_path / "kde-tiny"
        assert (
            main(
                [
                    "train",
                    "kde",
                    "--setting",
                    "face-cos",
                    "--scale",
                    "tiny",
                    "--out",
                    str(out),
                    "--param",
                    "num_samples=64",
                ]
            )
            == 0
        )
        train_output = capsys.readouterr().out
        assert "training KDE" in train_output and "saved to" in train_output
        assert (out / "estimator.json").is_file()

        assert main(["estimate", str(out)]) == 0
        estimate_output = capsys.readouterr().out
        assert "KDE on face-cos" in estimate_output and "test:" in estimate_output

        assert main(["serve-bench", str(out), "--requests", "100"]) == 0
        bench_output = capsys.readouterr().out
        assert "serve-bench" in bench_output and "throughput" in bench_output

        assert main(["models", "--dir", str(tmp_path)]) == 0
        assert "kde-tiny" in capsys.readouterr().out

    def test_python_dash_m_repro(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "Tables:" in result.stdout

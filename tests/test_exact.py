"""Tests for the blocked exact-selectivity engine (repro.exact)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    SelectivityOracle,
    apply_stream,
    generate_update_stream,
    generate_workload,
    make_face_like,
    make_fasttext_like,
    replay_stream_labels,
)
from repro.data.updates import UpdateOperation
from repro.distances import get_distance
from repro.exact import (
    BlockedOracle,
    DeltaOracle,
    LegacyOracle,
    ReferenceOracle,
    get_default_num_workers,
    set_default_num_workers,
)
from repro.index.cover_tree import CoverTree

#: one dataset per registered distance (euclidean data is unnormalised so the
#: norm-dependent code paths are exercised)
DISTANCE_DATASETS = {
    "euclidean": lambda: make_fasttext_like(num_vectors=600, dim=14, seed=3).vectors,
    "cosine": lambda: make_face_like(num_vectors=600, dim=14, seed=3).vectors,
}


def _queries_and_thresholds(data, distance, num=25, seed=0):
    rng = np.random.default_rng(seed)
    queries = data[rng.choice(len(data), size=num, replace=False)]
    reference = ReferenceOracle(data, distance)
    # half arbitrary thresholds, half knife-edge rank thresholds (exact
    # distance values) so tie handling is exercised
    arbitrary = rng.uniform(0.01, 1.2, size=num)
    ranks = rng.integers(0, len(data), size=num)
    ties = np.array(
        [reference.sorted_distances_to(q)[k] for q, k in zip(queries, ranks)]
    )
    thresholds = np.where(np.arange(num) % 2 == 0, arbitrary, ties)
    return queries, thresholds


class TestBlockedOracleParity:
    @pytest.mark.parametrize("distance", sorted(DISTANCE_DATASETS))
    def test_batch_matches_per_query_reference_exactly(self, distance):
        data = DISTANCE_DATASETS[distance]()
        queries, thresholds = _queries_and_thresholds(data, distance)
        engine = BlockedOracle(data, distance)
        reference = ReferenceOracle(data, distance)
        np.testing.assert_array_equal(
            engine.selectivities_batch(queries, thresholds),
            reference.selectivities_batch(queries, thresholds),
        )

    @pytest.mark.parametrize("distance", sorted(DISTANCE_DATASETS))
    def test_grid_thresholds_match_reference(self, distance):
        data = DISTANCE_DATASETS[distance]()
        rng = np.random.default_rng(1)
        queries = data[rng.choice(len(data), size=10, replace=False)]
        grid = rng.uniform(0.01, 1.0, size=(10, 7))
        engine = BlockedOracle(data, distance)
        reference = ReferenceOracle(data, distance)
        np.testing.assert_array_equal(
            engine.selectivities_batch(queries, grid),
            reference.selectivities_batch(queries, grid),
        )

    @pytest.mark.parametrize("distance", sorted(DISTANCE_DATASETS))
    def test_threshold_profile_bitwise_vs_reference(self, distance):
        data = DISTANCE_DATASETS[distance]()
        rng = np.random.default_rng(2)
        queries = data[rng.choice(len(data), size=12, replace=False)]
        ranks = np.array([1, 2, 5, 17, 60, 300, len(data)])
        engine = BlockedOracle(data, distance)
        thresholds, counts = engine.threshold_profile(queries, ranks)
        ref_thresholds, ref_counts = ReferenceOracle(data, distance).threshold_profile(
            queries, ranks
        )
        np.testing.assert_array_equal(thresholds, ref_thresholds)
        np.testing.assert_array_equal(counts, ref_counts)
        assert np.all(counts >= ranks[None, :])

    @pytest.mark.parametrize("distance", sorted(DISTANCE_DATASETS))
    def test_kth_distances_match_sorted_profile(self, distance):
        data = DISTANCE_DATASETS[distance]()
        rng = np.random.default_rng(3)
        queries = data[rng.choice(len(data), size=8, replace=False)]
        ks = np.array([0, 3, 11, 599])
        engine = BlockedOracle(data, distance)
        got = engine.kth_distances(queries, ks)
        expected = ReferenceOracle(data, distance).kth_distances(queries, ks)
        np.testing.assert_array_equal(got, expected)


class TestBlockingInvariance:
    """Counts must not depend on block size, worker count or batch shape."""

    @pytest.fixture(scope="class")
    def setting(self):
        data = DISTANCE_DATASETS["euclidean"]()
        queries, thresholds = _queries_and_thresholds(data, "euclidean", seed=4)
        baseline = BlockedOracle(data, "euclidean").selectivities_batch(queries, thresholds)
        return data, queries, thresholds, baseline

    @pytest.mark.parametrize("block_bytes", [1, 4096, 1 << 18, 1 << 30])
    def test_block_size_invariance(self, setting, block_bytes):
        data, queries, thresholds, baseline = setting
        engine = BlockedOracle(data, "euclidean", block_bytes=block_bytes)
        np.testing.assert_array_equal(
            engine.selectivities_batch(queries, thresholds), baseline
        )

    @pytest.mark.parametrize("num_workers", [1, 2, 7])
    def test_worker_count_invariance(self, setting, num_workers):
        data, queries, thresholds, baseline = setting
        engine = BlockedOracle(data, "euclidean", num_workers=num_workers, block_bytes=4096)
        np.testing.assert_array_equal(
            engine.selectivities_batch(queries, thresholds), baseline
        )

    def test_single_row_batch_matches(self, setting):
        data, queries, thresholds, baseline = setting
        engine = BlockedOracle(data, "euclidean")
        for i in (0, 7, len(queries) - 1):
            got = engine.selectivities_batch(queries[i : i + 1], thresholds[i : i + 1])
            assert got[0] == baseline[i]

    def test_empty_query_batch(self, setting):
        data = setting[0]
        engine = BlockedOracle(data, "euclidean")
        out = engine.selectivities_batch(
            np.empty((0, data.shape[1])), np.empty(0)
        )
        assert out.shape == (0,) and out.dtype == np.int64
        with pytest.raises(ValueError):
            engine.threshold_profile(np.empty((0, data.shape[1])), [])

    def test_progress_callback_reports_all_rows(self, setting):
        data, queries, thresholds, _ = setting
        engine = BlockedOracle(data, "euclidean", block_bytes=4096, num_workers=2)
        seen = []
        engine.selectivities_batch(
            queries, thresholds, progress=lambda done, total: seen.append((done, total))
        )
        assert seen[-1][0] == len(queries)
        assert all(total == len(queries) for _, total in seen)
        assert [done for done, _ in seen] == sorted(done for done, _ in seen)

    def test_default_worker_override(self):
        original = get_default_num_workers()
        try:
            set_default_num_workers(3)
            assert get_default_num_workers() == 3
        finally:
            set_default_num_workers(None)
        assert get_default_num_workers() >= 1


class TestPruning:
    def test_pruned_counts_exactly_match_unpruned(self):
        data = DISTANCE_DATASETS["euclidean"]()
        regions = CoverTree(data, "euclidean", min_region_size=40, seed=0).leaf_regions()
        queries, thresholds = _queries_and_thresholds(data, "euclidean", seed=5)
        plain = BlockedOracle(data, "euclidean")
        pruned = BlockedOracle(data, "euclidean", regions=regions)
        # include very low thresholds, where pruning skips most regions
        low = np.full(len(queries), 1e-3)
        for cutoff in (thresholds, low):
            np.testing.assert_array_equal(
                pruned.selectivities_batch(queries, cutoff),
                plain.selectivities_batch(queries, cutoff),
            )

    def test_pruning_ignored_for_cosine(self):
        data = DISTANCE_DATASETS["cosine"]()
        regions = CoverTree(data, "cosine", min_region_size=40, seed=0).leaf_regions()
        engine = BlockedOracle(data, "cosine", regions=regions)
        assert engine._regions is None

    def test_invalid_regions_rejected(self):
        data = DISTANCE_DATASETS["euclidean"]()
        regions = CoverTree(data, "euclidean", min_region_size=40, seed=0).leaf_regions()
        with pytest.raises(ValueError):
            BlockedOracle(data, "euclidean", regions=regions[:-1])


class TestDeltaOracle:
    @pytest.mark.parametrize("distance", sorted(DISTANCE_DATASETS))
    def test_parity_against_rebuild_after_mixed_stream(self, distance):
        data = DISTANCE_DATASETS[distance]()
        operations = generate_update_stream(
            data, num_operations=20, records_per_operation=4, seed=7
        )
        rng = np.random.default_rng(8)
        queries = data[rng.choice(len(data), size=15, replace=False)]
        thresholds = rng.uniform(0.05, 1.0, size=15)
        delta = DeltaOracle(data, distance)
        _, states = apply_stream(data, operations)
        for operation, state in zip(operations, states):
            delta.apply(operation)
            np.testing.assert_array_equal(delta.current_data(), state)
            assert delta.num_objects == len(state)
            rebuilt = BlockedOracle(state, distance)
            np.testing.assert_array_equal(
                delta.selectivities_batch(queries, thresholds),
                rebuilt.selectivities_batch(queries, thresholds),
            )

    def test_tie_thresholds_replay_matches_legacy_pipeline(self):
        """Rank thresholds *are* deleted rows' distances; the legacy GEMV
        pipeline is bit-stable under deletion, so both pipelines must agree
        integer for integer at every update step."""
        data = DISTANCE_DATASETS["euclidean"]()
        rng = np.random.default_rng(9)
        queries = data[rng.choice(len(data), size=12, replace=False)]
        ranks = np.array([1, 3, 10, 40, 120])
        engine_thresholds, _ = BlockedOracle(data, "euclidean").threshold_profile(
            queries, ranks
        )
        legacy_thresholds, _ = LegacyOracle(data, "euclidean").threshold_profile(
            queries, ranks
        )
        operations = generate_update_stream(
            data, num_operations=15, records_per_operation=5, seed=10
        )
        delta = DeltaOracle(data, "euclidean")
        current = data
        from repro.data import apply_update

        for operation in operations:
            delta.apply(operation)
            current = apply_update(current, operation)
            np.testing.assert_array_equal(
                delta.selectivities_batch(queries, engine_thresholds),
                LegacyOracle(current, "euclidean").selectivities_batch(
                    queries, legacy_thresholds
                ),
            )

    def test_delete_of_inserted_rows(self):
        data = DISTANCE_DATASETS["euclidean"]()[:200]
        delta = DeltaOracle(data, "euclidean")
        inserted = data[:6] + 0.01
        delta.insert(inserted)
        assert delta.num_objects == 206
        # delete three of the inserted rows (view indices past the base)
        delta.delete(np.array([200, 202, 204]))
        assert delta.num_objects == 203
        expected = np.concatenate([data, inserted[np.array([1, 3, 5])]], axis=0)
        np.testing.assert_array_equal(delta.current_data(), expected)

    def test_out_of_range_deletes_ignored(self):
        data = DISTANCE_DATASETS["euclidean"]()[:100]
        delta = DeltaOracle(data, "euclidean")
        delta.delete(np.array([5, 500, 1000]))
        assert delta.num_objects == 99

    def test_negative_deletes_wrap_like_apply_update(self):
        from repro.data import apply_update

        data = DISTANCE_DATASETS["euclidean"]()[:100]
        operation = UpdateOperation(kind="delete", indices=np.array([-1, 2]))
        expected = apply_update(data, operation)
        delta = DeltaOracle(data, "euclidean")
        delta.apply(operation)
        np.testing.assert_array_equal(delta.current_data(), expected)
        with pytest.raises(IndexError):
            delta.delete(np.array([-200]))

    def test_base_cache_hit_across_operations(self):
        data = DISTANCE_DATASETS["euclidean"]()[:300]
        delta = DeltaOracle(data, "euclidean")
        rng = np.random.default_rng(11)
        queries = data[:8]
        thresholds = rng.uniform(0.1, 0.9, size=8)
        delta.selectivities_batch(queries, thresholds)
        delta.delete(np.arange(5))
        delta.selectivities_batch(queries, thresholds)
        info = delta.cache_info()
        assert info["base_batches_cached"] == 1
        assert info["dead_base_rows"] == 5

    def test_insert_validation(self):
        data = DISTANCE_DATASETS["euclidean"]()[:50]
        delta = DeltaOracle(data, "euclidean")
        with pytest.raises(ValueError):
            delta.insert(np.ones((2, data.shape[1] + 1)))

    def test_replay_stream_labels_matches_rebuild(self):
        data = DISTANCE_DATASETS["cosine"]()[:250]
        operations = generate_update_stream(
            data, num_operations=8, records_per_operation=3, seed=12
        )
        rng = np.random.default_rng(13)
        queries = data[rng.choice(len(data), size=6, replace=False)]
        thresholds = rng.uniform(0.05, 0.6, size=6)
        _, states = apply_stream(data, operations)
        stream = replay_stream_labels(data, operations, queries, thresholds, "cosine")
        for (operation, delta, labels), state in zip(stream, states):
            np.testing.assert_array_equal(
                labels, BlockedOracle(state, "cosine").selectivities_batch(queries, thresholds)
            )


class TestWorkloadIntegration:
    def test_generate_workload_worker_invariance(self):
        dataset_vectors = make_face_like(num_vectors=300, dim=10, seed=6)
        a, _ = generate_workload(
            dataset_vectors, "cosine", num_queries=20, thresholds_per_query=6,
            seed=2, num_workers=1, block_bytes=4096,
        )
        b, _ = generate_workload(
            dataset_vectors, "cosine", num_queries=20, thresholds_per_query=6,
            seed=2, num_workers=4,
        )
        np.testing.assert_array_equal(a.thresholds, b.thresholds)
        np.testing.assert_array_equal(a.selectivities, b.selectivities)

    def test_generate_workload_progress_callback(self):
        dataset = make_face_like(num_vectors=200, dim=8, seed=6)
        seen = []
        generate_workload(
            dataset, "cosine", num_queries=12, thresholds_per_query=4,
            seed=0, progress=lambda done, total: seen.append((done, total)),
        )
        assert seen and seen[-1][0] == 12

    def test_oracle_batch_matches_singles(self):
        data = DISTANCE_DATASETS["cosine"]()
        oracle = SelectivityOracle(data, "cosine")
        rng = np.random.default_rng(14)
        queries = data[rng.choice(len(data), size=10, replace=False)]
        thresholds = rng.uniform(0.05, 0.8, size=10)
        batch = oracle.batch_selectivity(queries, thresholds)
        singles = [oracle.selectivity(q, t) for q, t in zip(queries, thresholds)]
        np.testing.assert_array_equal(batch, singles)

    def test_legacy_oracle_matches_engine_on_arbitrary_thresholds(self):
        data = DISTANCE_DATASETS["euclidean"]()
        rng = np.random.default_rng(15)
        queries = data[rng.choice(len(data), size=10, replace=False)]
        thresholds = rng.uniform(0.05, 1.0, size=10)
        np.testing.assert_array_equal(
            LegacyOracle(data, "euclidean").selectivities_batch(queries, thresholds),
            BlockedOracle(data, "euclidean").selectivities_batch(queries, thresholds),
        )


class TestPartitionerLabels:
    """Satellite: the vectorised local labels must be bit-identical to the
    former per-(row, partition) loop."""

    @staticmethod
    def _loop_labels(partitioning, queries, thresholds):
        out = np.zeros((len(queries), partitioning.num_partitions))
        for k, partition in enumerate(partitioning.partitions):
            local_data = partitioning.data[partition.point_indices]
            if len(local_data) == 0:
                continue
            for i, (query, threshold) in enumerate(zip(queries, thresholds)):
                distances = partitioning.distance(query, local_data)
                out[i, k] = float(np.count_nonzero(distances <= threshold))
        return out

    @pytest.mark.parametrize("distance", sorted(DISTANCE_DATASETS))
    def test_bit_identical_to_per_row_loop(self, distance):
        from repro.index.partitioner import cover_tree_partitioning

        data = DISTANCE_DATASETS[distance]()[:400]
        partitioning = cover_tree_partitioning(data, num_partitions=4, distance=distance)
        queries, thresholds = _queries_and_thresholds(data, distance, num=20, seed=16)
        got = partitioning.local_selectivity_labels(queries, thresholds)
        expected = self._loop_labels(partitioning, queries, thresholds)
        np.testing.assert_array_equal(got, expected)

    def test_local_labels_sum_matches_engine_counts(self):
        from repro.index.partitioner import cover_tree_partitioning

        data = DISTANCE_DATASETS["euclidean"]()[:400]
        partitioning = cover_tree_partitioning(data, num_partitions=3, distance="euclidean")
        rng = np.random.default_rng(17)
        queries = data[rng.choice(len(data), size=8, replace=False)]
        thresholds = rng.uniform(0.1, 0.9, size=8)
        local = partitioning.local_selectivity_labels(queries, thresholds)
        totals = LegacyOracle(data, "euclidean").selectivities_batch(queries, thresholds)
        np.testing.assert_array_equal(local.sum(axis=1).astype(np.int64), totals)

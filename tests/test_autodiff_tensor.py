"""Unit tests for the autodiff Tensor core: ops, broadcasting, backward."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autodiff import Tensor, check_gradients, concat, maximum, minimum, stack, unbroadcast, where


def make_tensor(rng, shape, requires_grad=True):
    return Tensor(rng.normal(size=shape), requires_grad=requires_grad)


class TestTensorBasics:
    def test_construction_from_list(self):
        tensor = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert tensor.shape == (2, 2)
        assert tensor.dtype == np.float64
        assert not tensor.requires_grad

    def test_item_and_len(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 3.0).detach()
        assert not b.requires_grad

    def test_backward_requires_grad(self):
        a = Tensor([1.0], requires_grad=False)
        with pytest.raises(RuntimeError):
            a.backward()

    def test_backward_non_scalar_needs_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_grad_accumulates_across_backward_calls(self):
        a = Tensor([2.0], requires_grad=True)
        (a * 3).sum().backward()
        (a * 3).sum().backward()
        assert a.grad == pytest.approx(np.array([6.0]))

    def test_zero_grad(self):
        a = Tensor([2.0], requires_grad=True)
        (a * 3).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))


class TestUnbroadcast:
    def test_no_change_for_same_shape(self):
        grad = np.ones((3, 4))
        assert unbroadcast(grad, (3, 4)).shape == (3, 4)

    def test_sums_added_leading_dims(self):
        grad = np.ones((5, 3, 4))
        out = unbroadcast(grad, (3, 4))
        assert out.shape == (3, 4)
        assert np.all(out == 5)

    def test_sums_expanded_axes(self):
        grad = np.ones((3, 4))
        out = unbroadcast(grad, (3, 1))
        assert out.shape == (3, 1)
        assert np.all(out == 4)

    def test_scalar_target(self):
        grad = np.ones((2, 2))
        out = unbroadcast(grad, ())
        assert out.shape == ()
        assert out == pytest.approx(4.0)


class TestArithmeticGradients:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda a, b: a + b,
            lambda a, b: a - b,
            lambda a, b: a * b,
            lambda a, b: a / (b * b + 1.0),
            lambda a, b: a * 2.0 + b * -0.5,
            lambda a, b: -a + b,
        ],
        ids=["add", "sub", "mul", "div", "scalar_mix", "neg"],
    )
    def test_binary_ops(self, rng, fn):
        a = make_tensor(rng, (3, 4))
        b = make_tensor(rng, (3, 4))
        assert check_gradients(fn, [a, b])

    def test_broadcast_add(self, rng):
        a = make_tensor(rng, (3, 4))
        b = make_tensor(rng, (4,))
        assert check_gradients(lambda x, y: x + y, [a, b])

    def test_broadcast_mul_column(self, rng):
        a = make_tensor(rng, (3, 4))
        b = make_tensor(rng, (3, 1))
        assert check_gradients(lambda x, y: x * y, [a, b])

    def test_pow(self, rng):
        a = Tensor(np.abs(rng.normal(size=(3, 3))) + 0.5, requires_grad=True)
        assert check_gradients(lambda x: x ** 3, [a])

    def test_pow_rejects_tensor_exponent(self, rng):
        a = make_tensor(rng, (2, 2))
        with pytest.raises(TypeError):
            a ** Tensor([2.0])

    def test_radd_rsub_rtruediv(self, rng):
        a = Tensor(np.abs(rng.normal(size=(3,))) + 1.0, requires_grad=True)
        assert check_gradients(lambda x: 2.0 + x, [a])
        assert check_gradients(lambda x: 2.0 - x, [a])
        assert check_gradients(lambda x: 2.0 / x, [a])


class TestMatmulAndShape:
    def test_matmul_gradients(self, rng):
        a = make_tensor(rng, (4, 3))
        b = make_tensor(rng, (3, 5))
        assert check_gradients(lambda x, y: x @ y, [a, b])

    def test_matmul_value(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(3, 2))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b)

    def test_transpose(self, rng):
        a = make_tensor(rng, (2, 5))
        assert check_gradients(lambda x: x.T @ x, [a])

    def test_reshape_roundtrip(self, rng):
        a = make_tensor(rng, (2, 6))
        assert check_gradients(lambda x: x.reshape(3, 4) * 2.0, [a])

    def test_getitem_slice(self, rng):
        a = make_tensor(rng, (4, 5))
        assert check_gradients(lambda x: x[:, 1:3] * 3.0, [a])

    def test_getitem_row(self, rng):
        a = make_tensor(rng, (4, 5))
        assert check_gradients(lambda x: x[2], [a])


class TestReductions:
    def test_sum_all(self, rng):
        a = make_tensor(rng, (3, 4))
        assert check_gradients(lambda x: x.sum(), [a])

    @pytest.mark.parametrize("axis,keepdims", [(0, False), (1, False), (0, True), (1, True)])
    def test_sum_axis(self, rng, axis, keepdims):
        a = make_tensor(rng, (3, 4))
        assert check_gradients(lambda x: x.sum(axis=axis, keepdims=keepdims), [a])

    def test_mean(self, rng):
        a = make_tensor(rng, (3, 4))
        assert check_gradients(lambda x: x.mean(axis=1), [a])
        np.testing.assert_allclose(a.mean().data, a.data.mean())

    def test_max_axis(self, rng):
        a = make_tensor(rng, (3, 4))
        assert check_gradients(lambda x: x.max(axis=1), [a], atol=1e-3)

    def test_max_value(self, rng):
        a = Tensor(rng.normal(size=(6,)))
        assert a.max().item() == pytest.approx(a.data.max())


class TestNonlinearities:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda x: x.exp(),
            lambda x: (x * x + 1.0).log(),
            lambda x: (x * x + 0.1).sqrt(),
            lambda x: x.relu(),
            lambda x: x.sigmoid(),
            lambda x: x.tanh(),
            lambda x: x.softplus(),
            lambda x: x.abs(),
            lambda x: x.clip(-0.5, 0.5),
        ],
        ids=["exp", "log", "sqrt", "relu", "sigmoid", "tanh", "softplus", "abs", "clip"],
    )
    def test_elementwise_gradients(self, rng, fn):
        a = Tensor(rng.normal(size=(3, 4)) + 0.05, requires_grad=True)
        assert check_gradients(fn, [a], atol=1e-3)

    def test_relu_zeroes_negative(self):
        out = Tensor([-1.0, 2.0]).relu()
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_sigmoid_range(self, rng):
        out = Tensor(rng.normal(size=100) * 10).sigmoid()
        assert np.all(out.data > 0.0) and np.all(out.data < 1.0)


class TestCombinators:
    def test_concat_gradients(self, rng):
        a = make_tensor(rng, (3, 2))
        b = make_tensor(rng, (3, 4))
        assert check_gradients(lambda x, y: concat([x, y], axis=1), [a, b])

    def test_stack_gradients(self, rng):
        a = make_tensor(rng, (3,))
        b = make_tensor(rng, (3,))
        assert check_gradients(lambda x, y: stack([x, y], axis=1), [a, b])

    def test_where_gradients(self, rng):
        a = make_tensor(rng, (3, 4))
        b = make_tensor(rng, (3, 4))
        condition = rng.random((3, 4)) > 0.5
        assert check_gradients(lambda x, y: where(condition, x, y), [a, b])

    def test_maximum_minimum(self, rng):
        a = make_tensor(rng, (3, 4))
        b = make_tensor(rng, (3, 4))
        assert check_gradients(lambda x, y: maximum(x, y), [a, b], atol=1e-3)
        assert check_gradients(lambda x, y: minimum(x, y), [a, b], atol=1e-3)

    def test_comparison_returns_numpy(self, rng):
        a = Tensor(rng.normal(size=(3,)))
        b = Tensor(rng.normal(size=(3,)))
        assert isinstance(a > b, np.ndarray)
        assert isinstance(a <= 0.0, np.ndarray)


class TestGraphTraversal:
    def test_diamond_graph_gradient(self):
        # y = (a * 2) + (a * 3); dy/da = 5
        a = Tensor([1.0, 2.0], requires_grad=True)
        y = (a * 2.0) + (a * 3.0)
        y.sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 5.0])

    def test_deep_chain(self):
        a = Tensor([0.5], requires_grad=True)
        out = a
        for _ in range(50):
            out = out * 1.01 + 0.001
        out.sum().backward()
        assert a.grad is not None and np.isfinite(a.grad).all()

    def test_shared_subexpression(self, rng):
        a = make_tensor(rng, (3, 3))
        assert check_gradients(lambda x: (x.relu() * x.relu()).sum(axis=0), [a], atol=1e-3)


@settings(max_examples=25, deadline=None)
@given(
    data=hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=5),
        elements=st.floats(-10, 10, allow_nan=False),
    )
)
def test_property_sum_matches_numpy(data):
    """Property: Tensor.sum agrees with numpy and its gradient is all ones."""
    tensor = Tensor(data.copy(), requires_grad=True)
    out = tensor.sum()
    assert out.item() == pytest.approx(float(data.sum()), rel=1e-9, abs=1e-9)
    out.backward()
    np.testing.assert_allclose(tensor.grad, np.ones_like(data))


@settings(max_examples=25, deadline=None)
@given(
    data=hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
        elements=st.floats(-5, 5, allow_nan=False),
    )
)
def test_property_relu_idempotent_and_nonnegative(data):
    """Property: relu output is non-negative and relu(relu(x)) == relu(x)."""
    tensor = Tensor(data.copy())
    once = tensor.relu()
    twice = once.relu()
    assert np.all(once.data >= 0)
    np.testing.assert_allclose(once.data, twice.data)

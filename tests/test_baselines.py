"""Tests for every baseline estimator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DLNEstimator,
    DNNEstimator,
    GradientBoostingRegressor,
    IsotonicCalibratedEstimator,
    KDEEstimator,
    LightGBMEstimator,
    LSHEstimator,
    MoEEstimator,
    RMIEstimator,
    UMNNEstimator,
    bin_features,
    build_bin_edges,
    clenshaw_curtis,
    pool_adjacent_violators,
)
from repro.baselines.base import ThresholdEmbedding
from repro.autodiff import Tensor

FAST_NN_KWARGS = dict(epochs=5, batch_size=64, early_stopping_patience=None)


def _mse(prediction, truth):
    return float(np.mean((np.asarray(prediction) - np.asarray(truth)) ** 2))


def _constant_baseline_mse(split):
    constant = split.train.selectivities.mean()
    return float(np.mean((constant - split.test.selectivities) ** 2))


class TestThresholdEmbedding:
    def test_shape_and_nonnegative(self, rng):
        embedding = ThresholdEmbedding(embedding_dim=6, rng=rng)
        out = embedding(Tensor(rng.uniform(0, 1, size=(9, 1))))
        assert out.shape == (9, 6)
        assert np.all(out.data >= 0)


class TestKDE:
    def test_fit_estimate_shapes(self, tiny_cosine_split):
        estimator = KDEEstimator(num_samples=100).fit(tiny_cosine_split)
        out = estimator.estimate(
            tiny_cosine_split.test.queries[:10], tiny_cosine_split.test.thresholds[:10]
        )
        assert out.shape == (10,)
        assert np.all(out >= 0)

    def test_consistency(self, tiny_cosine_split):
        estimator = KDEEstimator(num_samples=100).fit(tiny_cosine_split)
        curve = estimator.selectivity_curve(
            tiny_cosine_split.test.queries[0], np.linspace(0, tiny_cosine_split.t_max, 40)
        )
        assert np.all(np.diff(curve) >= -1e-9)

    def test_estimate_bounded_by_database_size(self, tiny_cosine_split):
        estimator = KDEEstimator(num_samples=100).fit(tiny_cosine_split)
        out = estimator.estimate(
            tiny_cosine_split.test.queries, np.full(len(tiny_cosine_split.test), 10.0)
        )
        assert np.all(out <= tiny_cosine_split.dataset.num_vectors + 1e-6)

    def test_requires_fit(self, rng):
        with pytest.raises(RuntimeError):
            KDEEstimator().estimate(rng.normal(size=(2, 4)), np.array([0.1, 0.2]))

    def test_better_than_nothing(self, tiny_cosine_split):
        estimator = KDEEstimator(num_samples=200).fit(tiny_cosine_split)
        out = estimator.estimate(tiny_cosine_split.test.queries, tiny_cosine_split.test.thresholds)
        zero_mse = np.mean(tiny_cosine_split.test.selectivities ** 2)
        assert _mse(out, tiny_cosine_split.test.selectivities) < zero_mse


class TestLSH:
    def test_cosine_only(self, tiny_euclidean_split):
        with pytest.raises(ValueError):
            LSHEstimator().fit(tiny_euclidean_split)

    def test_fit_estimate(self, tiny_cosine_split):
        estimator = LSHEstimator(num_hash_bits=10, num_samples=150).fit(tiny_cosine_split)
        out = estimator.estimate(
            tiny_cosine_split.test.queries[:10], tiny_cosine_split.test.thresholds[:10]
        )
        assert out.shape == (10,)
        assert np.all(out >= 0)

    def test_consistency_same_query(self, tiny_cosine_split):
        estimator = LSHEstimator(num_hash_bits=10, num_samples=150).fit(tiny_cosine_split)
        curve = estimator.selectivity_curve(
            tiny_cosine_split.test.queries[1], np.linspace(0, tiny_cosine_split.t_max, 30)
        )
        assert np.all(np.diff(curve) >= -1e-9)

    def test_full_budget_is_exact(self, tiny_cosine_split):
        """With the sampling budget covering the database the estimate is exact."""
        n = tiny_cosine_split.dataset.num_vectors
        estimator = LSHEstimator(num_hash_bits=8, num_samples=n * 2).fit(tiny_cosine_split)
        rows = slice(0, 15)
        out = estimator.estimate(
            tiny_cosine_split.test.queries[rows], tiny_cosine_split.test.thresholds[rows]
        )
        np.testing.assert_allclose(out, tiny_cosine_split.test.selectivities[rows], rtol=1e-9)


class TestGBDTInternals:
    def test_bin_edges_and_binning(self, rng):
        features = rng.normal(size=(200, 3))
        edges = build_bin_edges(features, max_bins=16)
        binned = bin_features(features, edges)
        assert binned.shape == features.shape
        assert binned.min() >= 0
        assert binned.max() <= 16

    def test_boosting_fits_smooth_function(self, rng):
        x = rng.uniform(-2, 2, size=(500, 2))
        y = 3 * x[:, 0] + np.sin(3 * x[:, 1])
        model = GradientBoostingRegressor(num_trees=40, learning_rate=0.2, max_depth=4).fit(x, y)
        prediction = model.predict(x)
        assert _mse(prediction, y) < 0.2 * np.var(y)

    def test_monotone_constraint_enforced(self, rng):
        """Prediction must be non-decreasing in the constrained feature."""
        x = rng.uniform(0, 1, size=(600, 2))
        y = 5 * x[:, 1] + rng.normal(scale=0.3, size=600)  # increasing in feature 1
        model = GradientBoostingRegressor(
            num_trees=30, learning_rate=0.2, max_depth=4, monotone_increasing=(1,)
        ).fit(x, y)
        grid = np.linspace(0, 1, 50)
        for fixed in [0.2, 0.5, 0.8]:
            features = np.column_stack([np.full(50, fixed), grid])
            prediction = model.predict(features)
            assert np.all(np.diff(prediction) >= -1e-9)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(np.zeros((2, 2)))


class TestLightGBMEstimators:
    def test_plain_fit_estimate(self, tiny_cosine_split):
        estimator = LightGBMEstimator(monotone=False, num_trees=20).fit(tiny_cosine_split)
        out = estimator.estimate(tiny_cosine_split.test.queries, tiny_cosine_split.test.thresholds)
        assert np.all(out >= 0)
        assert _mse(out, tiny_cosine_split.test.selectivities) < _constant_baseline_mse(
            tiny_cosine_split
        ) * 1.5

    def test_monotone_variant_consistent(self, tiny_cosine_split):
        estimator = LightGBMEstimator(monotone=True, num_trees=20).fit(tiny_cosine_split)
        assert estimator.guarantees_consistency
        for row in range(0, 20, 5):
            curve = estimator.selectivity_curve(
                tiny_cosine_split.test.queries[row], np.linspace(0, tiny_cosine_split.t_max, 40)
            )
            assert np.all(np.diff(curve) >= -1e-9)

    def test_names(self):
        assert LightGBMEstimator(monotone=False).name == "LightGBM"
        assert LightGBMEstimator(monotone=True).name == "LightGBM-m"


class TestDeepBaselines:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: DNNEstimator(hidden_sizes=(32, 16), **FAST_NN_KWARGS),
            lambda: MoEEstimator(num_experts=3, top_k=2, expert_hidden_sizes=(16,), **FAST_NN_KWARGS),
            lambda: RMIEstimator(num_leaf_models=3, leaf_hidden_sizes=(16,), **FAST_NN_KWARGS),
        ],
        ids=["DNN", "MoE", "RMI"],
    )
    def test_fit_and_estimate(self, tiny_cosine_split, factory):
        estimator = factory().fit(tiny_cosine_split)
        out = estimator.estimate(tiny_cosine_split.test.queries, tiny_cosine_split.test.thresholds)
        assert out.shape == (len(tiny_cosine_split.test),)
        assert np.all(out >= 0) and np.all(np.isfinite(out))

    def test_deep_baselines_not_consistent_by_contract(self):
        assert not DNNEstimator().guarantees_consistency
        assert not MoEEstimator().guarantees_consistency
        assert not RMIEstimator().guarantees_consistency

    def test_moe_top_k_validation(self):
        with pytest.raises(ValueError):
            from repro.baselines.moe import MixtureOfExperts

            MixtureOfExperts(input_dim=4, num_experts=2, top_k=5)

    def test_requires_fit(self, rng):
        with pytest.raises(RuntimeError):
            DNNEstimator().estimate(rng.normal(size=(2, 5)), np.array([0.1, 0.2]))


class TestDLN:
    def test_fit_and_estimate(self, tiny_cosine_split):
        estimator = DLNEstimator(num_lattices=3, epochs=5, early_stopping_patience=None).fit(
            tiny_cosine_split
        )
        out = estimator.estimate(tiny_cosine_split.test.queries, tiny_cosine_split.test.thresholds)
        assert np.all(out >= 0) and np.all(np.isfinite(out))

    def test_consistency(self, tiny_cosine_split):
        estimator = DLNEstimator(num_lattices=3, epochs=3, early_stopping_patience=None).fit(
            tiny_cosine_split
        )
        for row in (0, 7):
            curve = estimator.selectivity_curve(
                tiny_cosine_split.test.queries[row], np.linspace(0, tiny_cosine_split.t_max, 30)
            )
            assert np.all(np.diff(curve) >= -1e-9)

    def test_calibrator_monotone_outputs(self, rng):
        from repro.baselines.dln import Calibrator

        calibrator = Calibrator(0.0, 1.0, num_keypoints=6, monotone=True, rng=rng)
        values = calibrator(np.linspace(0, 1, 25)).data.reshape(-1)
        assert np.all(np.diff(values) >= -1e-9)
        assert values[-1] == pytest.approx(1.0, abs=1e-6)


class TestUMNN:
    def test_clenshaw_curtis_weights(self):
        nodes, weights = clenshaw_curtis(9)
        assert len(nodes) == len(weights) == 9
        assert np.all(weights >= 0)
        # CC weights integrate constants exactly: sum of weights == 2 (length of [-1, 1]).
        assert weights.sum() == pytest.approx(2.0, abs=1e-9)
        # And integrate x^2 on [-1, 1] to 2/3.
        assert np.sum(weights * nodes ** 2) == pytest.approx(2.0 / 3.0, abs=1e-6)

    def test_clenshaw_curtis_rejects_single_point(self):
        with pytest.raises(ValueError):
            clenshaw_curtis(1)

    def test_fit_and_estimate(self, tiny_cosine_split):
        estimator = UMNNEstimator(
            hidden_sizes=(32, 16), num_quadrature_points=8, epochs=5, early_stopping_patience=None
        ).fit(tiny_cosine_split)
        out = estimator.estimate(tiny_cosine_split.test.queries, tiny_cosine_split.test.thresholds)
        assert np.all(out >= 0) and np.all(np.isfinite(out))

    def test_consistency(self, tiny_cosine_split):
        estimator = UMNNEstimator(
            hidden_sizes=(16,), num_quadrature_points=8, epochs=3, early_stopping_patience=None
        ).fit(tiny_cosine_split)
        curve = estimator.selectivity_curve(
            tiny_cosine_split.test.queries[2], np.linspace(0, tiny_cosine_split.t_max, 40)
        )
        assert np.all(np.diff(curve) >= -1e-9)

    def test_zero_threshold_gives_offset_only(self, tiny_cosine_split):
        estimator = UMNNEstimator(hidden_sizes=(16,), num_quadrature_points=8, epochs=2).fit(
            tiny_cosine_split
        )
        out = estimator.estimate(tiny_cosine_split.test.queries[:5], np.zeros(5))
        assert np.all(out >= 0)


class TestIsotonic:
    def test_pav_already_monotone(self):
        values = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(pool_adjacent_violators(values), values)

    def test_pav_averages_violations(self):
        np.testing.assert_allclose(
            pool_adjacent_violators(np.array([3.0, 1.0])), np.array([2.0, 2.0])
        )

    def test_pav_output_monotone(self, rng):
        values = rng.normal(size=50)
        out = pool_adjacent_violators(values)
        assert np.all(np.diff(out) >= -1e-12)

    def test_pav_preserves_mean(self, rng):
        values = rng.normal(size=30)
        assert pool_adjacent_violators(values).mean() == pytest.approx(values.mean())

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=30)
    )
    def test_property_pav_monotone_and_bounded(self, values):
        """Property: PAV output is monotone and within the input range."""
        array = np.asarray(values)
        out = pool_adjacent_violators(array)
        assert np.all(np.diff(out) >= -1e-9)
        assert out.min() >= array.min() - 1e-9
        assert out.max() <= array.max() + 1e-9

    def test_isotonic_wrapper_makes_dnn_consistent(self, tiny_cosine_split):
        wrapped = IsotonicCalibratedEstimator(DNNEstimator(hidden_sizes=(16,), **FAST_NN_KWARGS))
        wrapped.fit(tiny_cosine_split)
        assert wrapped.guarantees_consistency
        query = tiny_cosine_split.test.queries[0]
        thresholds = np.linspace(0, tiny_cosine_split.t_max, 40)
        curve = wrapped.selectivity_curve(query, thresholds)
        assert np.all(np.diff(curve) >= -1e-9)

"""Tests for the scenario-driven traffic generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    SCENARIOS,
    EstimateEvent,
    Scenario,
    TrafficGenerator,
    UpdateEvent,
    available_scenarios,
    make_scenario,
)

POOL = 200


def _estimate_indices(events):
    chunks = [e.indices for e in events if isinstance(e, EstimateEvent) and len(e)]
    return np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)


class TestScenarioCatalogue:
    def test_builtins_present(self):
        assert {"uniform", "zipfian", "bursty", "update-heavy", "drifting"} <= set(
            available_scenarios()
        )

    def test_make_scenario_by_name_and_overrides(self):
        scenario = make_scenario("zipfian", zipf_exponent=2.0)
        assert scenario.popularity == "zipfian" and scenario.zipf_exponent == 2.0
        # the catalogue entry itself is untouched
        assert SCENARIOS["zipfian"].zipf_exponent != 2.0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown traffic scenario"):
            make_scenario("nope")

    def test_scenario_instance_passthrough(self):
        custom = Scenario(name="custom", popularity="uniform")
        assert make_scenario(custom) is custom


class TestTrafficGenerator:
    def test_emits_exactly_num_requests(self):
        for name in available_scenarios():
            generator = TrafficGenerator(name, pool_size=POOL, seed=0, insert_dim=4)
            events = generator.materialize(333, arrival_batch=32)
            indices = _estimate_indices(events)
            assert len(indices) == 333, name
            assert indices.min() >= 0 and indices.max() < POOL, name

    def test_deterministic_per_seed(self):
        for name in available_scenarios():
            first = TrafficGenerator(name, POOL, seed=7, insert_dim=4).materialize(200, 16)
            second = TrafficGenerator(name, POOL, seed=7, insert_dim=4).materialize(200, 16)
            np.testing.assert_array_equal(_estimate_indices(first), _estimate_indices(second))

    def test_seeds_differ(self):
        a = _estimate_indices(TrafficGenerator("zipfian", POOL, seed=1).materialize(200, 16))
        b = _estimate_indices(TrafficGenerator("zipfian", POOL, seed=2).materialize(200, 16))
        assert not np.array_equal(a, b)

    def test_zipfian_is_skewed(self):
        uniform = _estimate_indices(TrafficGenerator("uniform", POOL, seed=3).materialize(2000, 50))
        zipfian = _estimate_indices(TrafficGenerator("zipfian", POOL, seed=3).materialize(2000, 50))
        top_uniform = np.bincount(uniform, minlength=POOL).max()
        top_zipfian = np.bincount(zipfian, minlength=POOL).max()
        assert top_zipfian > 3 * top_uniform

    def test_bursty_pulses_and_idles(self):
        generator = TrafficGenerator("bursty", POOL, seed=0)
        events = generator.materialize(500, arrival_batch=16)
        sizes = [len(e) for e in events if isinstance(e, EstimateEvent)]
        scenario = SCENARIOS["bursty"]
        assert 0 in sizes  # idle ticks
        assert max(sizes) == 16 * scenario.burst_multiplier
        assert sum(sizes) == 500

    def test_update_heavy_interleaves_updates(self):
        generator = TrafficGenerator("update-heavy", POOL, seed=0, insert_dim=6)
        events = generator.materialize(640, arrival_batch=32)
        updates = [e for e in events if isinstance(e, UpdateEvent)]
        assert updates, "update-heavy must emit update events"
        for update in updates:
            assert update.inserts.shape == (SCENARIOS["update-heavy"].update_inserts, 6)

    def test_update_scenario_requires_insert_dim(self):
        with pytest.raises(ValueError, match="insert_dim"):
            TrafficGenerator("update-heavy", POOL, seed=0)

    def test_drifting_hot_set_moves(self):
        generator = TrafficGenerator("drifting", POOL, seed=0)
        events = [e for e in generator.materialize(4000, 25) if isinstance(e, EstimateEvent)]
        early = np.concatenate([e.indices for e in events[:8]])
        late = np.concatenate([e.indices for e in events[-8:]])
        early_hot = set(np.bincount(early, minlength=POOL).argsort()[-5:])
        late_hot = set(np.bincount(late, minlength=POOL).argsort()[-5:])
        assert early_hot != late_hot

    def test_input_validation(self):
        with pytest.raises(ValueError):
            TrafficGenerator("uniform", pool_size=0)
        generator = TrafficGenerator("uniform", POOL)
        with pytest.raises(ValueError):
            generator.materialize(100, arrival_batch=0)
        with pytest.raises(ValueError):
            generator.materialize(-1, arrival_batch=8)


class TestServingBenchmarkScenarios:
    def test_serve_bench_accepts_scenarios(self, tiny_cosine_split):
        from repro import create_estimator
        from repro.serving import EstimationService, run_serving_benchmark

        service = EstimationService(cache_capacity=32)
        kde = create_estimator("kde", num_samples=64, seed=0).fit(tiny_cosine_split)
        service.add_model("kde", kde)
        report = run_serving_benchmark(
            service,
            "kde",
            tiny_cosine_split.test.queries,
            tiny_cosine_split.test.thresholds,
            num_requests=150,
            arrival_batch=16,
            scenario="bursty",
            seed=2,
        )
        assert report.scenario == "bursty"
        assert report.num_requests == 150
        assert "scenario=bursty" in report.text

    def test_serve_bench_skips_updates_without_support(self, tiny_cosine_split):
        from repro import create_estimator
        from repro.serving import EstimationService, run_serving_benchmark

        service = EstimationService()
        kde = create_estimator("kde", num_samples=64, seed=0).fit(tiny_cosine_split)
        service.add_model("kde", kde)
        report = run_serving_benchmark(
            service,
            "kde",
            tiny_cosine_split.test.queries,
            tiny_cosine_split.test.thresholds,
            num_requests=200,
            arrival_batch=16,
            scenario="update-heavy",
            seed=0,
        )
        assert report.updates_skipped > 0 and report.updates_applied == 0
        assert "skipped" in report.text

"""Tests for the declarative pipeline: specs, artifact store, runner, CLI.

Cache-correctness contract under test:

* the same spec twice -> the second materialization is a pure cache hit with
  bit-identical artifacts;
* any changed spec field -> a new hash and a fresh build;
* an interrupted run resumes without recomputing finished stages.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.cli import TABLE_ALIASES, build_parser, main
from repro.eval import build_setting_split, run_setting, train_specs_for_models
from repro.eval.registry import selnet_train_spec
from repro.experiments import TINY
from repro.pipeline import (
    ArtifactStore,
    DatasetSpec,
    EvalSpec,
    ExperimentSpec,
    MANIFEST_FILE,
    PipelineRunner,
    TrainSpec,
    WorkloadSpec,
    canonical_json,
    use_store,
)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def _workload_spec(seed: int = 0) -> WorkloadSpec:
    return WorkloadSpec.for_setting("face-cos", TINY, seed=seed)


def _kde_train_spec(workload: WorkloadSpec) -> TrainSpec:
    return train_specs_for_models(TINY, workload, include=["KDE"])["KDE"]


# ---------------------------------------------------------------------- #
# Spec hashing
# ---------------------------------------------------------------------- #
class TestSpecHashing:
    def test_hash_is_stable_across_instances(self):
        first, second = _workload_spec(), _workload_spec()
        assert first.spec_hash == second.spec_hash
        assert len(first.spec_hash) == 16
        int(first.spec_hash, 16)  # hex

    def test_every_dataset_field_changes_the_hash(self):
        base = DatasetSpec(name="face_like", num_vectors=900, dim=12, seed=11)
        variants = [
            dataclasses.replace(base, name="youtube_like"),
            dataclasses.replace(base, num_vectors=901),
            dataclasses.replace(base, dim=13),
            dataclasses.replace(base, seed=12),
        ]
        hashes = {base.spec_hash} | {variant.spec_hash for variant in variants}
        assert len(hashes) == 1 + len(variants)

    def test_every_workload_field_changes_the_hash(self):
        base = _workload_spec()
        variants = [
            dataclasses.replace(base, distance="euclidean"),
            dataclasses.replace(base, num_queries=base.num_queries + 1),
            dataclasses.replace(base, thresholds_per_query=base.thresholds_per_query + 1),
            dataclasses.replace(base, threshold_distribution="beta"),
            dataclasses.replace(base, max_selectivity_fraction=0.123),
            dataclasses.replace(base, seed=base.seed + 1),
            dataclasses.replace(base, dataset=dataclasses.replace(base.dataset, seed=99)),
        ]
        hashes = {base.spec_hash} | {variant.spec_hash for variant in variants}
        assert len(hashes) == 1 + len(variants)

    def test_train_params_order_does_not_matter(self):
        workload = _workload_spec()
        first = TrainSpec.create(workload, "kde", {"a": 1, "b": (2, 3)})
        second = TrainSpec.create(workload, "kde", {"b": [2, 3], "a": 1})
        assert first.spec_hash == second.spec_hash

    def test_train_params_value_changes_hash(self):
        workload = _workload_spec()
        first = TrainSpec.create(workload, "kde", {"num_samples": 64})
        second = TrainSpec.create(workload, "kde", {"num_samples": 65})
        assert first.spec_hash != second.spec_hash

    def test_canonical_json_is_valid_json(self):
        spec = EvalSpec(train=_kde_train_spec(_workload_spec()))
        payload = json.loads(canonical_json(spec))
        assert payload["__spec__"] == "EvalSpec"
        assert payload["train"]["workload"]["dataset"]["name"] == "face_like"

    def test_eval_without_monotonicity_hashes_identically_across_scales(self):
        train = _kde_train_spec(_workload_spec())
        # Different scale profiles carry different monotonicity knobs, but
        # they are unused when measure_monotonicity=False — the evaluations
        # are identical and must share one artifact.
        first = EvalSpec(train=train, monotonicity_queries=10, monotonicity_thresholds=25)
        second = EvalSpec(train=train, monotonicity_queries=100, monotonicity_thresholds=100)
        assert first.spec_hash == second.spec_hash
        measured = EvalSpec(
            train=train,
            measure_monotonicity=True,
            monotonicity_queries=10,
            monotonicity_thresholds=25,
        )
        assert measured.spec_hash != first.spec_hash

    def test_unhashable_param_type_is_rejected(self):
        spec = TrainSpec.create(_workload_spec(), "kde", {"fn": object()})
        with pytest.raises(TypeError):
            spec.spec_hash

    def test_mapping_param_is_rejected_loudly(self):
        with pytest.raises(TypeError, match="mapping"):
            TrainSpec.create(_workload_spec(), "kde", {"opts": {"a": 1}})


# ---------------------------------------------------------------------- #
# Artifact store
# ---------------------------------------------------------------------- #
class TestArtifactStore:
    def test_dataset_round_trip_is_bit_exact(self, store):
        spec = DatasetSpec(name="face_like", num_vectors=300, dim=8, seed=11)
        built = store.get_or_build(spec)

        fresh = ArtifactStore(store.root)
        loaded = fresh.get_or_build(spec)
        assert np.array_equal(loaded.vectors, built.vectors)
        assert loaded.vectors.dtype == built.vectors.dtype
        assert loaded.name == built.name and loaded.distances == built.distances
        assert fresh.stats.hits_disk >= 1 and fresh.stats.misses == 0

    def test_workload_round_trip_is_bit_exact(self, store):
        spec = _workload_spec()
        built = store.get_or_build(spec)

        fresh = ArtifactStore(store.root)
        loaded = fresh.get_or_build(spec)
        for fold in ("train", "validation", "test"):
            for attr in ("queries", "thresholds", "selectivities", "query_ids"):
                assert np.array_equal(
                    getattr(getattr(loaded, fold), attr),
                    getattr(getattr(built, fold), attr),
                ), (fold, attr)
        assert loaded.t_max == built.t_max
        assert loaded.distance.name == built.distance.name
        # The reconstructed oracle reproduces the stored labels exactly.
        relabeled = loaded.oracle.batch_selectivity(
            loaded.test.queries, loaded.test.thresholds
        )
        assert np.array_equal(relabeled.astype(float), loaded.test.selectivities)

    def test_second_build_is_a_pure_cache_hit(self, store, monkeypatch):
        calls = {"builds": 0}
        original = DatasetSpec.build

        def counting_build(self, inner_store, **options):
            calls["builds"] += 1
            return original(self, inner_store, **options)

        monkeypatch.setattr(DatasetSpec, "build", counting_build)
        spec = DatasetSpec(name="face_like", num_vectors=200, dim=6, seed=3)
        store.get_or_build(spec)
        store.get_or_build(spec)
        assert calls["builds"] == 1

        fresh = ArtifactStore(store.root)
        fresh.get_or_build(spec)
        assert calls["builds"] == 1  # served from disk, not rebuilt
        assert store.stats.misses == 1 and store.stats.hits_memory == 1

    def test_changed_spec_field_builds_a_new_artifact(self, store):
        first = DatasetSpec(name="face_like", num_vectors=200, dim=6, seed=3)
        second = dataclasses.replace(first, seed=4)
        store.get_or_build(first)
        store.get_or_build(second)
        assert store.path_for(first).is_dir() and store.path_for(second).is_dir()
        assert store.path_for(first) != store.path_for(second)
        assert store.stats.misses == 2

    def test_memory_store_persists_nothing(self):
        memory = ArtifactStore.memory()
        value = memory.get_or_build(DatasetSpec(name="face_like", num_vectors=150, dim=5, seed=1))
        assert value.num_vectors == 150
        assert not memory.persistent and memory.path_for(_workload_spec()) is None
        assert memory.list_artifacts() == []

    def test_trained_model_round_trip_estimates_identically(self, store):
        workload = _workload_spec()
        train = _kde_train_spec(workload)
        built = store.get_or_build(train)
        split = store.get_or_build(workload)

        fresh = ArtifactStore(store.root)
        loaded = fresh.get_or_build(train)
        reference = built.estimator.estimate(split.test.queries, split.test.thresholds)
        restored = loaded.estimator.estimate(split.test.queries, split.test.thresholds)
        assert np.array_equal(reference, restored)
        assert loaded.fit_seconds == pytest.approx(built.fit_seconds)

    def test_eval_round_trip_preserves_every_number(self, store):
        spec = EvalSpec(train=_kde_train_spec(_workload_spec()), measure_monotonicity=True)
        built = store.get_or_build(spec)
        loaded = ArtifactStore(store.root).get_or_build(spec)
        assert loaded.model_name == built.model_name
        assert loaded.test_metrics.mse == built.test_metrics.mse
        assert loaded.validation_metrics.mape == built.validation_metrics.mape
        assert loaded.monotonicity_percent == built.monotonicity_percent
        assert loaded.fit_seconds == built.fit_seconds
        assert loaded.estimation_milliseconds == built.estimation_milliseconds

    def test_interrupted_build_leaves_no_half_artifact(self, store, monkeypatch):
        spec = DatasetSpec(name="face_like", num_vectors=200, dim=6, seed=3)

        def exploding_save(self, directory, value):
            (directory / "dataset.npz").write_bytes(b"partial")
            raise KeyboardInterrupt

        monkeypatch.setattr(DatasetSpec, "save_artifact", exploding_save)
        with pytest.raises(KeyboardInterrupt):
            store.get_or_build(spec)
        assert not store.path_for(spec).exists()
        assert store.list_artifacts() == []

    def test_interrupted_run_resumes_without_recomputing(self, store, monkeypatch):
        workload = _workload_spec()
        eval_spec = EvalSpec(train=_kde_train_spec(workload))

        boom = RuntimeError("interrupted mid-training")
        original_train_build = TrainSpec.build
        monkeypatch.setattr(
            TrainSpec, "build", lambda self, inner, **options: (_ for _ in ()).throw(boom)
        )
        with pytest.raises(RuntimeError):
            PipelineRunner(store=store).run(ExperimentSpec(name="t", evals=(eval_spec,)))
        # The finished upstream stages were persisted before the crash.
        assert store.path_for(workload.dataset).is_dir()
        assert store.path_for(workload).is_dir()

        monkeypatch.setattr(TrainSpec, "build", original_train_build)
        labeling_calls = {"count": 0}
        import repro.data.workload as workload_module

        original_generate = workload_module.generate_workload

        def counting_generate(*args, **kwargs):
            labeling_calls["count"] += 1
            return original_generate(*args, **kwargs)

        monkeypatch.setattr(workload_module, "generate_workload", counting_generate)
        resumed = ArtifactStore(store.root)
        outcome = PipelineRunner(store=resumed).run(ExperimentSpec(name="t", evals=(eval_spec,)))
        assert labeling_calls["count"] == 0  # dataset + workload replayed from disk
        assert outcome.value(eval_spec).model_name == "KDE"
        report = outcome.report
        cached = {stage.kind: stage.cached for stage in report.stages}
        # The completed workload artifact replays from disk; its dataset
        # dependency is pruned from the DAG entirely (loaded on demand by
        # the workload artifact itself, not scheduled as a stage).
        assert cached["workload"] and "dataset" not in cached
        assert not cached["train"] and not cached["eval"]

    def test_manifest_records_provenance(self, store):
        workload = _workload_spec()
        store.get_or_build(workload)
        entries = store.list_artifacts()
        by_kind = {entry["kind"]: entry for entry in entries}
        manifest = by_kind["workload"]
        assert manifest["hash"] == workload.spec_hash
        assert manifest["spec"]["__spec__"] == "WorkloadSpec"
        assert manifest["dependencies"] == {workload.dataset.spec_hash: "dataset"}
        assert manifest["build_seconds"] >= 0
        assert (store.path_for(workload) / MANIFEST_FILE).is_file()

    def test_evict_and_gc(self, store):
        workload = _workload_spec()
        eval_spec = EvalSpec(train=_kde_train_spec(workload))
        store.get_or_build(eval_spec)
        assert len(store.list_artifacts()) == 4  # dataset, workload, train, eval

        removed = store.evict(kinds=["eval"])
        assert [entry["kind"] for entry in removed] == ["eval"]
        assert len(store.list_artifacts()) == 3

        summary = store.gc(dry_run=True)
        assert len(summary["removed"]) == 3 and len(store.list_artifacts()) == 3
        summary = store.gc()
        assert len(summary["removed"]) == 3 and store.list_artifacts() == []

    def test_age_based_eviction_spares_recent_artifacts(self, store):
        spec = DatasetSpec(name="face_like", num_vectors=150, dim=5, seed=1)
        store.get_or_build(spec)
        assert store.evict(older_than_seconds=3600.0) == []
        assert len(store.evict(older_than_seconds=0.0)) == 1


# ---------------------------------------------------------------------- #
# Runner
# ---------------------------------------------------------------------- #
class TestPipelineRunner:
    def test_shared_stages_are_deduplicated(self):
        workload = _workload_spec()
        specs = train_specs_for_models(TINY, workload, include=["KDE", "LightGBM-m"])
        evals = tuple(EvalSpec(train=spec) for spec in specs.values())
        outcome = PipelineRunner().run(ExperimentSpec(name="dedup", evals=evals))
        kinds = [stage.kind for stage in outcome.report.stages]
        assert kinds.count("dataset") == 1 and kinds.count("workload") == 1
        assert kinds.count("train") == 2 and kinds.count("eval") == 2

    def test_parallel_branches_match_serial_execution(self):
        # SelNet-ct exercises the autodiff tape (the thread-local grad-mode
        # change exists for exactly this model family); DNN covers the plain
        # neural baseline; KDE the non-autodiff path.
        fast_scale = dataclasses.replace(
            TINY,
            selnet_epochs=2,
            selnet_pretrain_epochs=1,
            baseline_epochs=2,
            num_control_points=4,
        )
        workload = WorkloadSpec.for_setting("face-cos", fast_scale, seed=0)
        specs = train_specs_for_models(
            fast_scale, workload, include=["KDE", "DNN", "SelNet-ct"]
        )
        evals = tuple(EvalSpec(train=spec) for spec in specs.values())
        experiment = ExperimentSpec(name="parity", evals=evals)
        serial = PipelineRunner(num_workers=1).run(experiment)
        parallel = PipelineRunner(num_workers=4).run(experiment)
        for spec in evals:
            left, right = serial.value(spec), parallel.value(spec)
            assert left.test_metrics.mse == right.test_metrics.mse
            assert left.validation_metrics.mae == right.validation_metrics.mae

    def test_pipeline_path_matches_direct_path(self):
        models = ["KDE", "LightGBM-m"]
        spec_driven = run_setting("face-cos", TINY, models=models)
        split = build_setting_split("face-cos", TINY, seed=0)
        direct = run_setting("face-cos", TINY, models=models, split=split)
        assert [r.model_name for r in spec_driven.results] == [
            r.model_name for r in direct.results
        ]
        for left, right in zip(spec_driven.results, direct.results):
            assert left.test_metrics.mse == right.test_metrics.mse
            assert left.test_metrics.mae == right.test_metrics.mae
            assert left.validation_metrics.mape == right.validation_metrics.mape

    def test_warm_rerun_is_fully_cached(self, store):
        with use_store(store):
            first = run_setting("face-cos", TINY, models=["KDE"])
            store.reset_stats()
            store.clear_memory()
            second = run_setting("face-cos", TINY, models=["KDE"])
        assert second.pipeline_report.all_cached
        assert store.stats.misses == 0
        assert (
            first.results[0].test_metrics.mse == second.results[0].test_metrics.mse
        )
        # Cached evaluations carry the original fit wall-clock.
        assert second.results[0].fit_seconds == first.results[0].fit_seconds

    def test_warm_run_prunes_upstream_stages(self, store):
        with use_store(store):
            run_setting("face-cos", TINY, models=["KDE"])
        store.clear_memory()
        store.reset_stats()
        with use_store(store):
            warm = run_setting("face-cos", TINY, models=["KDE"])
        # The cached evaluation replays from its own JSON; dataset, workload
        # and model stages are pruned from the warm DAG entirely.
        assert [stage.kind for stage in warm.pipeline_report.stages] == ["eval"]
        assert warm.pipeline_report.all_cached

    def test_eval_stages_run_exclusively(self, monkeypatch):
        import threading
        import time as time_module

        state = {"active": 0, "overlap_during_eval": 0}
        guard = threading.Lock()

        def wrap(original, is_eval):
            def build(self, inner_store, **options):
                with guard:
                    state["active"] += 1
                    if is_eval and state["active"] > 1:
                        state["overlap_during_eval"] += 1
                try:
                    time_module.sleep(0.02)
                    return original(self, inner_store, **options)
                finally:
                    with guard:
                        state["active"] -= 1

            return build

        monkeypatch.setattr(TrainSpec, "build", wrap(TrainSpec.build, is_eval=False))
        monkeypatch.setattr(EvalSpec, "build", wrap(EvalSpec.build, is_eval=True))
        workload = _workload_spec()
        specs = train_specs_for_models(TINY, workload, include=["KDE", "LightGBM-m"])
        evals = tuple(EvalSpec(train=spec) for spec in specs.values())
        outcome = PipelineRunner(num_workers=4).run(ExperimentSpec(name="excl", evals=evals))
        assert len(outcome.report.stages) == 6
        # Timing-sensitive eval stages never share the pool with other stages.
        assert state["overlap_during_eval"] == 0

    def test_stage_failure_propagates(self, monkeypatch):
        monkeypatch.setattr(
            TrainSpec,
            "build",
            lambda self, store, **options: (_ for _ in ()).throw(ValueError("nope")),
        )
        eval_spec = EvalSpec(train=_kde_train_spec(_workload_spec()))
        with pytest.raises(ValueError, match="nope"):
            PipelineRunner().run(ExperimentSpec(name="fail", evals=(eval_spec,)))

    def test_build_setting_split_reuses_store(self, store):
        with use_store(store):
            first = build_setting_split("face-cos", TINY, seed=0)
            second = build_setting_split("face-cos", TINY, seed=0)
        assert second is first  # same in-memory artifact
        assert store.stats.by_kind["workload"]["misses"] == 1


# ---------------------------------------------------------------------- #
# Serving straight from the store
# ---------------------------------------------------------------------- #
class TestServingFromStore:
    def test_estimation_service_serves_store_models(self, store):
        from repro.serving import EstimationService

        workload = _workload_spec()
        train = _kde_train_spec(workload)
        trained = store.get_or_build(train)
        split = store.get_or_build(workload)

        service = EstimationService.from_store(store)
        assert train.spec_hash in service.available_models()
        queries = split.test.queries[:8]
        thresholds = split.test.thresholds[:8]
        served = service.estimate(train.spec_hash, queries, thresholds, use_cache=False)
        expected = trained.estimator.estimate(queries, thresholds)
        assert np.allclose(served, expected)

    def test_models_dir_requires_persistence(self):
        with pytest.raises(ValueError):
            ArtifactStore.memory().models_dir()

    def test_service_skips_in_flight_temp_dirs(self, store):
        from repro.serving import EstimationService

        train = _kde_train_spec(_workload_spec())
        store.get_or_build(train)
        # Simulate a build interrupted after the sidecar was written but
        # before the atomic rename: a hidden temp dir with a sidecar inside.
        temp_dir = store.models_dir() / ".tmp-deadbeef-cafe"
        temp_dir.mkdir()
        (temp_dir / "estimator.json").write_text("{\"format\": \"repro-estimator\"}")

        service = EstimationService.from_store(store)
        assert service.available_models() == [train.spec_hash]
        with pytest.raises(KeyError):
            service.get(".tmp-deadbeef-cafe")


# ---------------------------------------------------------------------- #
# Figure 5 labels once per operation, however many models track the stream
# ---------------------------------------------------------------------- #
class TestFigureLabelSharing:
    def test_figure5_relabels_once_per_operation(self, monkeypatch):
        import repro.experiments.figures as figures

        fast_scale = dataclasses.replace(
            TINY,
            selnet_epochs=2,
            selnet_pretrain_epochs=1,
            baseline_epochs=2,
            num_control_points=4,
        )
        calls = {"count": 0}
        original = figures.relabel_workload

        def counting_relabel(workload, oracle):
            calls["count"] += 1
            return original(workload, oracle)

        monkeypatch.setattr(figures, "relabel_workload", counting_relabel)
        num_operations = 2
        result = figures.figure5_updates(
            settings=("face-cos",),
            scale=fast_scale,
            num_operations=num_operations,
            models=("SelNet-ct", "SelNet-ad-ct"),
            mae_drift_threshold=1e9,  # never fine-tune: isolates label sharing
            seed=0,
        )
        # validation + test, once per operation — NOT once per model.
        assert calls["count"] == 2 * num_operations
        assert "face-cos SelNet-ct" in result.text
        assert f"face-cos_SelNet-ct_mse" in result.series


# ---------------------------------------------------------------------- #
# Incremental fine-tuning invalidates cached compiled kernels
# ---------------------------------------------------------------------- #
class TestIncrementalCompiledInvalidation:
    def test_fine_tune_invalidates_compiled_kernel(self):
        from repro.data import generate_update_stream
        from repro.core import IncrementalConfig, IncrementalSelNet
        from repro.eval.registry import selnet_factory

        fast_scale = dataclasses.replace(
            TINY, selnet_epochs=2, selnet_pretrain_epochs=1, num_control_points=4
        )
        split = build_setting_split("face-cos", fast_scale, seed=0)
        estimator = selnet_factory(fast_scale, "SelNet-ct", seed=0)().fit(split)
        estimator.compiled()  # store-loaded estimators arrive eagerly compiled

        incremental = IncrementalSelNet(
            estimator=estimator,
            data=split.dataset.vectors,
            distance=split.distance,
            train=split.train,
            validation=split.validation,
            # always fine-tune: the kernel-staleness path under test
            config=IncrementalConfig(mae_drift_threshold=-1.0, max_epochs=1),
        )
        operation = generate_update_stream(
            split.dataset.vectors, num_operations=1, records_per_operation=3, seed=0
        )[0]
        report = incremental.apply_operation(operation)
        assert report.retrained

        queries = split.test.queries[:6]
        thresholds = split.test.thresholds[:6]
        compiled = estimator.compiled().predict(queries, thresholds)
        graph = estimator.estimate(queries, thresholds)
        assert np.allclose(compiled, graph, atol=1e-9)


# ---------------------------------------------------------------------- #
# CLI: repro run / artifacts, shared parent flags
# ---------------------------------------------------------------------- #
class TestPipelineCLI:
    def test_run_smoke_cold_then_warm(self, tmp_path, capsys):
        store_dir = str(tmp_path / "artifacts")
        cold_stats = tmp_path / "cold.json"
        warm_stats = tmp_path / "warm.json"

        assert main(["run", "--smoke", "--store", store_dir, "--stats-json", str(cold_stats)]) == 0
        cold = json.loads(cold_stats.read_text())
        assert cold["all_cached"] is False
        assert cold["store_stats"]["misses"] > 0

        assert (
            main(
                [
                    "run",
                    "smoke",
                    "--store",
                    store_dir,
                    "--expect-all-cached",
                    "--stats-json",
                    str(warm_stats),
                ]
            )
            == 0
        )
        warm = json.loads(warm_stats.read_text())
        assert warm["all_cached"] is True
        assert warm["store_stats"]["misses"] == 0
        assert warm["pipeline"]["all_cached"] is True
        capsys.readouterr()

    def test_run_expect_all_cached_fails_cold(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "run",
                    "--smoke",
                    "--store",
                    str(tmp_path / "fresh"),
                    "--expect-all-cached",
                ]
            )
        capsys.readouterr()

    def test_run_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "no-such-experiment", "--no-store"])

    def test_artifacts_list_and_gc(self, tmp_path, capsys):
        store_dir = str(tmp_path / "artifacts")
        assert main(["run", "--smoke", "--store", store_dir]) == 0
        capsys.readouterr()

        assert main(["artifacts", "list", "--store", store_dir, "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        kinds = {entry["kind"] for entry in listing["artifacts"]}
        assert {"dataset", "workload", "train", "eval"} <= kinds

        # A bare gc (no filter) must refuse to wipe the store.
        with pytest.raises(SystemExit):
            main(["artifacts", "gc", "--store", store_dir])
        capsys.readouterr()
        assert main(["artifacts", "gc", "--store", store_dir, "--all"]) == 0
        capsys.readouterr()
        assert main(["artifacts", "list", "--store", store_dir, "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["artifacts"] == []

    def test_artifacts_path(self, tmp_path, capsys):
        store_dir = str(tmp_path / "artifacts")
        assert main(["artifacts", "path", "--store", store_dir]) == 0
        assert capsys.readouterr().out.strip() == store_dir

    def test_table_aliases_parse(self):
        parser = build_parser()
        args = parser.parse_args(["table", "accuracy"])
        assert TABLE_ALIASES[args.number] == 1
        args = parser.parse_args(["table", "7", "--num-workers", "2", "--seed", "5"])
        assert args.number == "7" and args.num_workers == 2 and args.seed == 5
        with pytest.raises(SystemExit):
            parser.parse_args(["table", "99"])

    def test_shared_parent_flags_on_every_experiment_command(self):
        parser = build_parser()
        for argv in (
            ["table", "1"],
            ["figure", "4"],
            ["run", "smoke"],
            ["train", "kde", "--out", "x"],
            ["oracle-bench"],
            ["serve-bench", "m"],
            ["infer-bench", "m"],
            ["cluster-bench", "m"],
        ):
            args = parser.parse_args(argv)
            assert hasattr(args, "num_workers")
            assert hasattr(args, "seed")
            assert hasattr(args, "block_kib")
            assert hasattr(args, "progress")
        # oracle-bench keeps its historical 4-thread default.
        assert parser.parse_args(["oracle-bench"]).num_workers == 4
        assert parser.parse_args(["table", "1"]).num_workers is None
        # --block-kib 0 is rejected cleanly (a zero block budget is invalid).
        with pytest.raises(SystemExit):
            parser.parse_args(["table", "1", "--block-kib", "0"])

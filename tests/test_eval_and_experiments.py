"""Tests for the evaluation harness, metrics, registry and experiment drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SelNetConfig, SelNetEstimator
from repro.estimator import SelectivityEstimator
from repro.eval import (
    CONSISTENT_MODELS,
    PAPER_MODEL_ORDER,
    compute_error_metrics,
    default_estimators,
    empirical_monotonicity,
    evaluate_estimator,
    format_accuracy_table,
    format_monotonicity_table,
    format_sweep_table,
    format_timing_table,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    results_to_csv,
    run_setting,
)
from repro.experiments import (
    TINY,
    figure3_dln_vs_selnet,
    get_scale,
    make_scaled_dataset,
    run_accuracy_table,
    run_control_point_sweep,
    setting_distance,
)


class _OracleEstimator(SelectivityEstimator):
    """Test double: answers with the exact selectivity (perfect, consistent)."""

    name = "Oracle"
    guarantees_consistency = True

    def fit(self, split):
        self._oracle = split.oracle
        return self

    def estimate(self, queries, thresholds):
        return self._oracle.batch_selectivity(queries, thresholds).astype(float)


class _BrokenEstimator(SelectivityEstimator):
    """Test double: deliberately non-monotone estimates."""

    name = "Broken"
    guarantees_consistency = False

    def fit(self, split):
        return self

    def estimate(self, queries, thresholds):
        return 100.0 * np.sin(np.asarray(thresholds) * 50.0) + 100.0


class TestErrorMetrics:
    def test_mse_mae_mape_values(self):
        prediction = np.array([2.0, 4.0])
        target = np.array([1.0, 2.0])
        assert mean_squared_error(prediction, target) == pytest.approx(2.5)
        assert mean_absolute_error(prediction, target) == pytest.approx(1.5)
        assert mean_absolute_percentage_error(prediction, target) == pytest.approx(1.0)

    def test_mape_floor_prevents_division_by_zero(self):
        value = mean_absolute_percentage_error(np.array([5.0]), np.array([0.0]))
        assert np.isfinite(value)

    def test_compute_error_metrics_bundle(self, rng):
        prediction = rng.uniform(0, 10, size=20)
        target = rng.uniform(0, 10, size=20)
        metrics = compute_error_metrics(prediction, target)
        assert metrics.mse == pytest.approx(mean_squared_error(prediction, target))
        assert set(metrics.as_dict()) == {"mse", "mae", "mape"}

    def test_perfect_prediction(self, rng):
        values = rng.uniform(1, 100, size=15)
        metrics = compute_error_metrics(values, values)
        assert metrics.mse == 0 and metrics.mae == 0 and metrics.mape == 0


class TestEmpiricalMonotonicity:
    def test_oracle_is_fully_monotone(self, tiny_cosine_split):
        estimator = _OracleEstimator().fit(tiny_cosine_split)
        score = empirical_monotonicity(
            estimator,
            tiny_cosine_split.test.queries,
            tiny_cosine_split.t_max,
            num_queries=5,
            thresholds_per_query=20,
        )
        assert score == pytest.approx(100.0)

    def test_broken_estimator_detected(self, tiny_cosine_split):
        estimator = _BrokenEstimator().fit(tiny_cosine_split)
        score = empirical_monotonicity(
            estimator,
            tiny_cosine_split.test.queries,
            tiny_cosine_split.t_max,
            num_queries=5,
            thresholds_per_query=20,
        )
        assert score < 100.0

    def test_selnet_full_monotonicity(self, tiny_cosine_split, fast_selnet_config):
        estimator = SelNetEstimator(fast_selnet_config).fit(tiny_cosine_split)
        score = empirical_monotonicity(
            estimator,
            tiny_cosine_split.test.queries,
            tiny_cosine_split.t_max,
            num_queries=4,
            thresholds_per_query=25,
        )
        assert score == pytest.approx(100.0)


class TestHarness:
    def test_evaluate_estimator_fields(self, tiny_cosine_split):
        result = evaluate_estimator(_OracleEstimator(), tiny_cosine_split, measure_monotonicity=True)
        assert result.test_metrics.mse == pytest.approx(0.0)
        assert result.monotonicity_percent == pytest.approx(100.0)
        assert result.fit_seconds >= 0
        assert result.estimation_milliseconds >= 0
        row = result.as_row()
        assert row["model"] == "Oracle" and row["consistent"] is True

    def test_registry_paper_order_and_lsh_exclusion(self):
        scale = TINY
        cosine = default_estimators(scale, num_vectors=500, distance_name="cosine")
        euclidean = default_estimators(scale, num_vectors=500, distance_name="euclidean")
        assert "LSH" in cosine and "LSH" not in euclidean
        assert list(cosine) == [name for name in PAPER_MODEL_ORDER if name in cosine]

    def test_registry_include_filter(self):
        factories = default_estimators(
            TINY, num_vectors=500, distance_name="cosine", include=["KDE", "DNN"]
        )
        assert list(factories) == ["KDE", "DNN"]

    def test_consistent_model_set_matches_estimators(self):
        factories = default_estimators(TINY, num_vectors=400, distance_name="cosine")
        for name, factory in factories.items():
            estimator = factory()
            assert estimator.guarantees_consistency == (name in CONSISTENT_MODELS)

    def test_run_setting_small_subset(self):
        evaluation = run_setting("face-cos", TINY, models=["KDE", "LightGBM-m"])
        assert {result.model_name for result in evaluation.results} == {"KDE", "LightGBM-m"}
        assert evaluation.best_model() in {"KDE", "LightGBM-m"}


class TestReporting:
    @pytest.fixture()
    def evaluation(self, tiny_cosine_split):
        return run_setting(
            "face-cos", TINY, models=["KDE"], split=tiny_cosine_split, measure_monotonicity=True
        )

    def test_accuracy_table_contains_model_and_star(self, evaluation):
        text = format_accuracy_table(evaluation, title="Table X")
        assert "Table X" in text and "KDE *" in text and "MSE(test)" in text

    def test_monotonicity_table(self, evaluation):
        text = format_monotonicity_table(evaluation)
        assert "KDE" in text and "%" in text or "Monotonicity" in text

    def test_timing_table(self, evaluation):
        text = format_timing_table({"face-cos": evaluation})
        assert "face-cos" in text and "KDE" in text

    def test_sweep_table(self):
        rows = [{"L": 4, "mse": 1.0, "mae": 0.5, "mape": 0.1}, {"L": 8, "mse": 0.5, "mae": 0.4, "mape": 0.09}]
        text = format_sweep_table(rows, parameter_name="L")
        assert "MSE" in text and "4" in text and "8" in text

    def test_csv_export(self, evaluation):
        csv = results_to_csv(evaluation.results)
        lines = csv.splitlines()
        assert lines[0].startswith("model,")
        assert len(lines) == 1 + len(evaluation.results)

    def test_csv_empty(self):
        assert results_to_csv([]) == ""


class TestExperimentScaffolding:
    def test_get_scale(self):
        assert get_scale("tiny").name == "tiny"
        assert get_scale("SMALL").name == "small"
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_make_scaled_dataset_settings(self):
        for setting in ("fasttext-cos", "fasttext-l2", "face-cos", "youtube-cos"):
            dataset = make_scaled_dataset(setting, TINY)
            assert dataset.num_vectors > 0
        with pytest.raises(KeyError):
            make_scaled_dataset("wikipedia", TINY)

    def test_setting_distance(self):
        assert setting_distance("fasttext-l2") == "euclidean"
        assert setting_distance("face-cos") == "cosine"

    def test_selnet_config_from_scale(self):
        config = TINY.selnet_config(num_partitions=1)
        assert isinstance(config, SelNetConfig)
        assert config.num_partitions == 1
        assert config.epochs == TINY.selnet_epochs

    def test_figure3(self):
        figure = figure3_dln_vs_selnet()
        assert "Figure 3" in figure.text
        dln_error = np.mean((figure.series["dln_estimate"] - figure.series["ground_truth"]) ** 2)
        selnet_error = np.mean(
            (figure.series["selnet_estimate"] - figure.series["ground_truth"]) ** 2
        )
        # The qualitative claim of Figure 3: adaptive control points fit far better.
        assert selnet_error < 0.5 * dln_error

    def test_accuracy_table_tiny(self):
        result = run_accuracy_table("face-cos", scale=TINY, models=["KDE", "LightGBM-m"])
        assert result.table_id == "Table 3"
        assert len(result.rows) == 2
        assert "KDE" in result.text

    def test_control_point_sweep_tiny(self):
        result = run_control_point_sweep(
            "face-cos", control_points=(4, 8), scale=TINY
        )
        assert result.table_id == "Table 8"
        assert len(result.rows) == 2
        assert all("mse" in row for row in result.rows)

"""Tests for the SelNet models, trainer, estimator API and incremental learning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor
from repro.core import (
    IncrementalConfig,
    IncrementalSelNet,
    PartitionedSelNet,
    SelNetConfig,
    SelNetEstimator,
    SelNetModel,
    train_selnet_model,
)
from repro.data import generate_update_stream
from repro.index import cover_tree_partitioning


class TestSelNetConfig:
    def test_defaults_valid(self):
        config = SelNetConfig()
        assert config.num_control_points > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_control_points": 0},
            {"num_partitions": 0},
            {"partition_method": "metis"},
            {"partition_ratio": 0.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SelNetConfig(**kwargs)

    def test_scaled_for_paper(self):
        paper = SelNetConfig().scaled_for_paper()
        assert paper.num_control_points == 50
        assert paper.epochs == 1500


class TestSelNetModel:
    @pytest.fixture()
    def model(self, fast_selnet_config, rng):
        return SelNetModel(input_dim=10, t_max=1.0, config=fast_selnet_config, rng=rng)

    def test_forward_shape(self, model, rng):
        queries = Tensor(rng.normal(size=(6, 10)))
        thresholds = rng.uniform(0, 1, size=6)
        out = model.forward(queries, thresholds)
        assert out.shape == (6,)

    def test_predict_non_negative(self, model, rng):
        predictions = model.predict(rng.normal(size=(8, 10)), rng.uniform(0, 1, size=8))
        assert np.all(predictions >= 0)

    def test_consistency_untrained(self, model, rng):
        """Monotonicity must hold even before any training (by construction)."""
        query = rng.normal(size=10)
        thresholds = np.linspace(0, 1, 50)
        curve = model.predict(np.repeat(query[None, :], 50, axis=0), thresholds)
        assert np.all(np.diff(curve) >= -1e-9)

    def test_curve_for_query(self, model, rng):
        curve = model.curve_for_query(rng.normal(size=10))
        assert curve.is_monotone
        assert curve.tau[0] == pytest.approx(0.0)
        assert curve.tau[-1] == pytest.approx(1.0)

    def test_augment_concatenates_latent(self, model, rng):
        augmented = model.augment(Tensor(rng.normal(size=(4, 10))))
        assert augmented.shape == (4, 10 + model.config.latent_dim)

    def test_gradients_flow_through_whole_model(self, model, rng):
        queries = Tensor(rng.normal(size=(5, 10)))
        out = model.forward(queries, rng.uniform(0.1, 0.9, size=5))
        out.sum().backward()
        with_grad = sum(1 for p in model.parameters() if p.grad is not None and np.any(p.grad != 0))
        assert with_grad > 0


class TestSelNetTraining:
    def test_training_reduces_loss(self, tiny_cosine_split, fast_selnet_config, rng):
        model = SelNetModel(
            input_dim=tiny_cosine_split.train.queries.shape[1],
            t_max=tiny_cosine_split.t_max,
            config=fast_selnet_config,
            rng=rng,
        )
        history = train_selnet_model(
            model, tiny_cosine_split.train, tiny_cosine_split.validation, fast_selnet_config, rng=rng
        )
        assert history.train_loss[-1] < history.train_loss[0]

    def test_estimator_fit_and_estimate(self, tiny_cosine_split, fast_selnet_config):
        estimator = SelNetEstimator(fast_selnet_config)
        estimator.fit(tiny_cosine_split)
        estimates = estimator.estimate(
            tiny_cosine_split.test.queries, tiny_cosine_split.test.thresholds
        )
        assert estimates.shape == (len(tiny_cosine_split.test),)
        assert np.all(estimates >= 0)
        assert np.all(np.isfinite(estimates))

    def test_estimator_beats_constant_baseline(self, tiny_cosine_split, fast_selnet_config):
        """Sanity: the trained model beats predicting the training mean."""
        estimator = SelNetEstimator(fast_selnet_config).fit(tiny_cosine_split)
        estimates = estimator.estimate(
            tiny_cosine_split.test.queries, tiny_cosine_split.test.thresholds
        )
        truth = tiny_cosine_split.test.selectivities
        model_mse = np.mean((estimates - truth) ** 2)
        constant_mse = np.mean((tiny_cosine_split.train.selectivities.mean() - truth) ** 2)
        assert model_mse < constant_mse

    def test_estimator_requires_fit(self, fast_selnet_config, rng):
        estimator = SelNetEstimator(fast_selnet_config)
        with pytest.raises(RuntimeError):
            estimator.estimate(rng.normal(size=(2, 10)), np.array([0.1, 0.2]))

    def test_estimator_names(self, fast_selnet_config):
        from dataclasses import replace

        assert SelNetEstimator(replace(fast_selnet_config, num_partitions=3)).name == "SelNet"
        assert SelNetEstimator(replace(fast_selnet_config, num_partitions=1)).name == "SelNet-ct"
        assert (
            SelNetEstimator(replace(fast_selnet_config, query_dependent_tau=False)).name
            == "SelNet-ad-ct"
        )

    def test_consistency_after_training(self, tiny_cosine_split, fast_selnet_config):
        estimator = SelNetEstimator(fast_selnet_config).fit(tiny_cosine_split)
        query = tiny_cosine_split.test.queries[0]
        thresholds = np.linspace(0, tiny_cosine_split.t_max, 60)
        curve = estimator.selectivity_curve(query, thresholds)
        assert np.all(np.diff(curve) >= -1e-9)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_property_untrained_estimates_monotone(self, tiny_cosine_split, seed):
        """Property: consistency holds for any random initialisation (Lemma 1)."""
        config = SelNetConfig(
            num_control_points=5,
            latent_dim=3,
            tau_hidden_sizes=(6,),
            p_hidden_sizes=(8,),
            embedding_dim=4,
            ae_hidden_sizes=(6,),
            epochs=1,
            ae_pretrain_epochs=0,
            seed=seed,
        )
        model = SelNetModel(
            input_dim=tiny_cosine_split.train.queries.shape[1],
            t_max=tiny_cosine_split.t_max,
            config=config,
            rng=np.random.default_rng(seed),
        )
        query = tiny_cosine_split.test.queries[seed % len(tiny_cosine_split.test)]
        thresholds = np.linspace(0, tiny_cosine_split.t_max, 30)
        curve = model.predict(np.repeat(query[None, :], 30, axis=0), thresholds)
        assert np.all(np.diff(curve) >= -1e-9)


class TestPartitionedSelNet:
    def test_partitioned_fit_and_estimate(self, tiny_cosine_split, fast_selnet_config):
        from dataclasses import replace

        config = replace(fast_selnet_config, num_partitions=3, epochs=4, pretrain_epochs=2)
        estimator = SelNetEstimator(config).fit(tiny_cosine_split)
        estimates = estimator.estimate(
            tiny_cosine_split.test.queries, tiny_cosine_split.test.thresholds
        )
        assert np.all(estimates >= 0) and np.all(np.isfinite(estimates))

    def test_partition_count_mismatch_rejected(self, tiny_cosine_split, fast_selnet_config, rng):
        from dataclasses import replace

        config = replace(fast_selnet_config, num_partitions=3)
        partitioning = cover_tree_partitioning(
            tiny_cosine_split.dataset.vectors, num_partitions=2, distance=tiny_cosine_split.distance
        )
        with pytest.raises(ValueError):
            PartitionedSelNet(
                tiny_cosine_split.train.queries.shape[1],
                tiny_cosine_split.t_max,
                config,
                partitioning,
                rng=rng,
            )

    def test_local_models_share_autoencoder(self, tiny_cosine_split, fast_selnet_config, rng):
        from dataclasses import replace

        config = replace(fast_selnet_config, num_partitions=2)
        partitioning = cover_tree_partitioning(
            tiny_cosine_split.dataset.vectors, num_partitions=2, distance=tiny_cosine_split.distance
        )
        model = PartitionedSelNet(
            tiny_cosine_split.train.queries.shape[1],
            tiny_cosine_split.t_max,
            config,
            partitioning,
            rng=rng,
        )
        assert all(local.autoencoder is model.autoencoder for local in model.local_models)

    def test_global_is_indicator_weighted_sum(self, tiny_cosine_split, fast_selnet_config, rng):
        from dataclasses import replace

        config = replace(fast_selnet_config, num_partitions=2)
        partitioning = cover_tree_partitioning(
            tiny_cosine_split.dataset.vectors, num_partitions=2, distance=tiny_cosine_split.distance
        )
        model = PartitionedSelNet(
            tiny_cosine_split.train.queries.shape[1],
            tiny_cosine_split.t_max,
            config,
            partitioning,
            rng=rng,
        )
        queries = tiny_cosine_split.test.queries[:4]
        thresholds = tiny_cosine_split.test.thresholds[:4]
        indicators = partitioning.indicator_batch(queries, thresholds)
        locals_ = [m.predict(queries, thresholds) for m in model.local_models]
        expected = sum(indicators[:, k] * locals_[k] for k in range(2))
        np.testing.assert_allclose(model.predict(queries, thresholds), expected, atol=1e-9)


class TestIncrementalSelNet:
    @pytest.fixture()
    def fitted(self, tiny_cosine_split, fast_selnet_config):
        estimator = SelNetEstimator(fast_selnet_config).fit(tiny_cosine_split)
        return estimator, tiny_cosine_split

    def test_rejects_partitioned_model(self, tiny_cosine_split, fast_selnet_config):
        from dataclasses import replace

        config = replace(fast_selnet_config, num_partitions=2, epochs=2, pretrain_epochs=1)
        estimator = SelNetEstimator(config).fit(tiny_cosine_split)
        with pytest.raises(TypeError):
            IncrementalSelNet(
                estimator=estimator,
                data=tiny_cosine_split.dataset.vectors,
                distance=tiny_cosine_split.distance,
                train=tiny_cosine_split.train,
                validation=tiny_cosine_split.validation,
            )

    def test_small_update_skips_retraining(self, fitted):
        estimator, split = fitted
        incremental = IncrementalSelNet(
            estimator=estimator,
            data=split.dataset.vectors,
            distance=split.distance,
            train=split.train,
            validation=split.validation,
            config=IncrementalConfig(mae_drift_threshold=1e9),
        )
        stream = generate_update_stream(split.dataset.vectors, num_operations=2, seed=0)
        reports = incremental.apply_stream(stream)
        assert len(reports) == 2
        assert not any(report.retrained for report in reports)

    def test_forced_retraining_path(self, fitted):
        estimator, split = fitted
        incremental = IncrementalSelNet(
            estimator=estimator,
            data=split.dataset.vectors,
            distance=split.distance,
            train=split.train,
            validation=split.validation,
            config=IncrementalConfig(mae_drift_threshold=-1.0, max_epochs=2, patience=1),
        )
        stream = generate_update_stream(split.dataset.vectors, num_operations=1, seed=1)
        report = incremental.apply_operation(stream[0])
        assert report.retrained
        assert report.fine_tune_epochs >= 1
        # After fine-tuning the model must still produce finite estimates.
        estimates = incremental.estimate(split.test.queries[:5], split.test.thresholds[:5])
        assert np.all(np.isfinite(estimates))

    def test_database_size_tracked(self, fitted):
        estimator, split = fitted
        incremental = IncrementalSelNet(
            estimator=estimator,
            data=split.dataset.vectors,
            distance=split.distance,
            train=split.train,
            validation=split.validation,
            config=IncrementalConfig(mae_drift_threshold=1e9),
        )
        from repro.data.updates import UpdateOperation

        report = incremental.apply_operation(
            UpdateOperation(kind="insert", vectors=np.zeros((5, split.dataset.dim)))
        )
        assert report.database_size == split.dataset.num_vectors + 5

"""Tests for the public estimator registry and the lifecycle protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    SelectivityEstimator,
    UpdateNotSupportedError,
    available_estimators,
    create_estimator,
    get_estimator_spec,
    iter_estimator_specs,
)
from repro.core import IncrementalSelNetEstimator, SelNetEstimator
from repro.eval.registry import CONSISTENT_MODELS, PAPER_MODEL_ORDER, default_estimators
from repro.experiments.scale import TINY
from repro.registry import find_registration


EXPECTED_NAMES = {
    "lsh",
    "kde",
    "lightgbm",
    "lightgbm-m",
    "dnn",
    "moe",
    "rmi",
    "dln",
    "umnn",
    "selnet",
    "selnet-ct",
    "selnet-ad-ct",
    "selnet-inc",
    "isotonic-dnn",
}


class TestRegistry:
    def test_every_builtin_is_registered(self):
        assert EXPECTED_NAMES <= set(available_estimators())

    def test_specs_cover_paper_display_names(self):
        displays = {spec.display_name for spec in iter_estimator_specs()}
        assert set(PAPER_MODEL_ORDER) <= displays

    def test_create_estimator_applies_params(self):
        estimator = create_estimator("kde", num_samples=77, seed=3)
        assert estimator.num_samples == 77 and estimator.seed == 3

    def test_create_selnet_from_flat_config_fields(self):
        estimator = create_estimator("selnet", epochs=5, num_partitions=2, seed=9)
        assert isinstance(estimator, SelNetEstimator)
        assert estimator.config.epochs == 5
        assert estimator.config.num_partitions == 2
        assert estimator.name == "SelNet"

    def test_variant_factories_force_their_ablation(self):
        ct = create_estimator("selnet-ct")
        ad = create_estimator("selnet-ad-ct")
        assert ct.config.num_partitions == 1 and ct.config.query_dependent_tau
        assert ad.config.num_partitions == 1 and not ad.config.query_dependent_tau

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(KeyError, match="selnet"):
            create_estimator("no-such-model")

    def test_spec_capability_flags(self):
        assert get_estimator_spec("selnet").guarantees_consistency
        assert not get_estimator_spec("dnn").guarantees_consistency
        assert get_estimator_spec("selnet-inc").supports_updates
        assert not get_estimator_spec("selnet").supports_updates
        assert get_estimator_spec("lsh").supported_distances == ("cosine",)
        assert not get_estimator_spec("lsh").supports_distance("euclidean")

    def test_consistency_flags_match_instances(self):
        for spec in iter_estimator_specs():
            estimator = spec.build(seed=0)
            assert estimator.guarantees_consistency == spec.guarantees_consistency, spec.name
            assert estimator.supports_updates == spec.supports_updates, spec.name

    def test_params_for_scale_uses_scale_budgets(self):
        params = get_estimator_spec("kde").params_for_scale(TINY, num_vectors=1000)
        assert params["num_samples"] == TINY.sample_budget(1000)
        params = get_estimator_spec("dnn").params_for_scale("tiny")
        assert params["epochs"] == TINY.baseline_epochs
        params = get_estimator_spec("selnet").params_for_scale(TINY)
        assert params["num_partitions"] == TINY.num_partitions

    def test_describe_is_jsonable(self):
        import json

        for spec in iter_estimator_specs():
            json.dumps(spec.describe())

    def test_find_registration(self):
        assert find_registration(create_estimator("kde")) == "kde"
        ct = create_estimator("selnet-ct")
        assert find_registration(ct) == "selnet-ct"

    def test_eval_registry_is_a_thin_consumer(self):
        assert CONSISTENT_MODELS >= {
            "LSH",
            "KDE",
            "LightGBM-m",
            "DLN",
            "UMNN",
            "SelNet",
            "SelNet-ct",
            "SelNet-ad-ct",
        }
        factories = default_estimators(TINY, num_vectors=500, distance_name="cosine")
        assert list(factories) == list(PAPER_MODEL_ORDER)
        assert "LSH" not in default_estimators(TINY, num_vectors=500, distance_name="euclidean")


class TestUpdateProtocol:
    def test_non_incremental_estimators_reject_updates(self):
        estimator = create_estimator("kde")
        with pytest.raises(UpdateNotSupportedError, match="selnet-inc"):
            estimator.update(inserts=np.zeros((1, 4)))

    def test_incremental_selnet_applies_updates(self, tiny_cosine_split, fast_selnet_config):
        from dataclasses import asdict

        params = asdict(fast_selnet_config)
        params.update(epochs=3, update_max_epochs=2, update_mae_drift_threshold=1e9)
        estimator = IncrementalSelNetEstimator(**params).fit(tiny_cosine_split)
        assert estimator.supports_updates

        rng = np.random.default_rng(0)
        dim = tiny_cosine_split.train.queries.shape[1]
        before = len(estimator.state.data)
        reports = estimator.update(
            inserts=rng.normal(size=(5, dim)), deletes=np.arange(3)
        )
        assert [report.operation_kind for report in reports] == ["delete", "insert"]
        assert len(estimator.state.data) == before - 3 + 5
        # drift threshold is huge, so no fine-tuning happened
        assert not any(report.retrained for report in reports)
        assert estimator.reports == reports

    def test_update_requires_some_operation(self, tiny_cosine_split, fast_selnet_config):
        from dataclasses import asdict

        params = asdict(fast_selnet_config)
        params["epochs"] = 2
        estimator = IncrementalSelNetEstimator(**params).fit(tiny_cosine_split)
        with pytest.raises(ValueError):
            estimator.update()


class TestQueryValidation:
    @pytest.fixture(scope="class")
    def fitted_kde(self, tiny_cosine_split):
        return create_estimator("kde", num_samples=64).fit(tiny_cosine_split)

    def test_estimate_one_rejects_2d_query(self, fitted_kde):
        with pytest.raises(ValueError, match="1-D query"):
            fitted_kde.estimate_one(np.zeros((2, 10)), 0.5)

    def test_estimate_one_rejects_wrong_dimensionality(self, fitted_kde):
        with pytest.raises(ValueError, match="fitted on 10-dimensional"):
            fitted_kde.estimate_one(np.zeros(4), 0.5)

    def test_estimate_one_rejects_array_threshold(self, fitted_kde):
        with pytest.raises(ValueError, match="scalar"):
            fitted_kde.estimate_one(np.zeros(10), np.asarray([0.1, 0.2]))

    def test_selectivity_curve_rejects_bad_shapes(self, fitted_kde):
        with pytest.raises(ValueError, match="1-D query"):
            fitted_kde.selectivity_curve(np.zeros((3, 10)), np.linspace(0, 1, 5))
        with pytest.raises(ValueError, match="thresholds"):
            fitted_kde.selectivity_curve(np.zeros(10), 0.5)

    def test_valid_single_query_still_works(self, fitted_kde, tiny_cosine_split):
        query = tiny_cosine_split.test.queries[0]
        value = fitted_kde.estimate_one(query, 0.4)
        assert np.isfinite(value) and value >= 0.0
        curve = fitted_kde.selectivity_curve(query, np.linspace(0.0, 0.8, 7))
        assert curve.shape == (7,)

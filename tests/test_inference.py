"""Compiled inference path: kernel parity, no_grad, serving integration.

The contract under test: ``estimator.compiled().predict`` answers within
1e-12 of graph-mode ``estimate`` for every registered estimator (for the
fused SelNet kernels the answers are bit-equal), stays correct across
persistence round-trips and incremental updates, and the serving layer uses
the compiled kernels by default without changing its answers.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from test_persistence import FAST_PARAMS

from repro import SelectivityEstimator, create_estimator, load_estimator
from repro.autodiff import (
    Tensor,
    enable_grad,
    is_grad_enabled,
    no_grad,
    piecewise_linear,
    segment_upper_indices,
)
from repro.inference import (
    CompiledPartitionedSelNet,
    CompiledSelNet,
    GraphFallbackKernel,
    compile_estimator,
    run_inference_benchmark,
    write_benchmark_json,
)
from repro.inference.precision import TIER_NAMES, parse_tier, relative_deviation
from repro.serving import EstimationService

PARITY = 1e-12


def _fit(name, tiny_cosine_split, **overrides):
    params = dict(FAST_PARAMS[name], seed=0)
    params.update(overrides)
    return create_estimator(name, **params).fit(tiny_cosine_split)


# ---------------------------------------------------------------------- #
# Kernel parity for every registered estimator
# ---------------------------------------------------------------------- #
class TestCompiledParity:
    @pytest.mark.parametrize("name", sorted(FAST_PARAMS))
    def test_compiled_matches_graph(self, name, tiny_cosine_split):
        estimator = _fit(name, tiny_cosine_split)
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        reference = np.asarray(estimator.estimate(queries, thresholds))
        kernel = estimator.compiled()
        compiled = kernel.predict(queries, thresholds)
        assert np.max(np.abs(compiled - reference)) <= PARITY

    def test_selnet_kernels_are_fused_and_bit_exact(self, tiny_cosine_split):
        for name, expected in [
            ("selnet-ct", CompiledSelNet),
            ("selnet-ad-ct", CompiledSelNet),
            ("selnet", CompiledPartitionedSelNet),
        ]:
            estimator = _fit(name, tiny_cosine_split)
            kernel = estimator.compiled()
            assert isinstance(kernel, expected)
            queries = tiny_cosine_split.test.queries
            thresholds = tiny_cosine_split.test.thresholds
            np.testing.assert_array_equal(
                kernel.predict(queries, thresholds),
                np.asarray(estimator.estimate(queries, thresholds)),
            )

    def test_parity_across_batch_sizes(self, tiny_cosine_split):
        estimator = _fit("selnet-ct", tiny_cosine_split)
        kernel = estimator.compiled()
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        for size in (1, 2, 7, len(thresholds)):
            q, t = queries[:size], thresholds[:size]
            np.testing.assert_array_equal(
                kernel.predict(q, t), np.asarray(estimator.estimate(q, t))
            )

    def test_unfitted_estimator_compiles_to_fallback(self):
        estimator = create_estimator("selnet-ct")
        kernel = estimator.compiled()
        assert isinstance(kernel, GraphFallbackKernel)
        with pytest.raises(RuntimeError, match="fitted"):
            kernel.predict(np.zeros((1, 4)), np.zeros(1))

    def test_baselines_fall_back(self, tiny_cosine_split):
        estimator = _fit("kde", tiny_cosine_split)
        kernel = estimator.compiled()
        assert isinstance(kernel, GraphFallbackKernel)
        assert kernel.describe()["wraps"] == "KDEEstimator"

    def test_compiled_is_cached_until_invalidated(self, tiny_cosine_split):
        estimator = _fit("selnet-ct", tiny_cosine_split)
        kernel = estimator.compiled()
        assert estimator.compiled() is kernel
        assert estimator.compiled(refresh=True) is not kernel
        estimator._invalidate_compiled()
        assert estimator.compiled() is not kernel

    def test_float32_kernel_close_but_smaller(self, tiny_cosine_split):
        estimator = _fit("selnet-ct", tiny_cosine_split)
        kernel32 = estimator.compiled(dtype=np.float32)
        assert kernel32.dtype == np.dtype(np.float32)
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        reference = np.asarray(estimator.estimate(queries, thresholds))
        out = kernel32.predict(queries, thresholds)
        scale = np.maximum(np.abs(reference), 1.0)
        assert np.max(np.abs(out - reference) / scale) < 1e-3

    def test_curve_values_match_selectivity_curve(self, tiny_cosine_split):
        grid = np.linspace(0.0, float(tiny_cosine_split.t_max), 17)
        for name in ("selnet-ct", "selnet", "kde"):
            estimator = _fit(name, tiny_cosine_split)
            kernel = estimator.compiled()
            queries = tiny_cosine_split.test.queries[:3]
            values = kernel.curve_values(queries, grid)
            assert values.shape == (3, len(grid))
            for row, query in enumerate(queries):
                expected = np.asarray(estimator.selectivity_curve(query, grid))
                scale = np.maximum(np.abs(expected), 1.0)
                assert np.max(np.abs(values[row] - expected) / scale) < 1e-9


# ---------------------------------------------------------------------- #
# Lifecycle: persistence round-trips and incremental updates
# ---------------------------------------------------------------------- #
class TestCompiledLifecycle:
    def test_persistence_roundtrip_recompiles(self, tiny_cosine_split, tmp_path):
        estimator = _fit("selnet-ct", tiny_cosine_split)
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        reference = estimator.compiled().predict(queries, thresholds)

        path = tmp_path / "model"
        estimator.save(path)
        loaded = load_estimator(path)
        # load recompiles eagerly: the kernel is attached, fresh, and exact.
        kernel = loaded.__dict__.get("_compiled_kernel")
        assert isinstance(kernel, CompiledSelNet)
        np.testing.assert_array_equal(kernel.predict(queries, thresholds), reference)

    def test_kernel_is_not_pickled(self, tiny_cosine_split, tmp_path):
        import pickle

        estimator = _fit("kde", tiny_cosine_split)
        estimator.compiled()
        path = tmp_path / "model"
        estimator.save(path)
        with open(path / "state.pkl", "rb") as handle:
            state = pickle.load(handle)
        assert "_compiled_kernel" not in state

    def test_update_recompiles_selnet_inc(self, tiny_cosine_split, rng):
        estimator = _fit(
            "selnet-inc",
            tiny_cosine_split,
            update_max_epochs=1,
            update_mae_drift_threshold=-1.0,  # any drift (even zero) forces a fine-tune
        )
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        stale_kernel = estimator.compiled()
        before = stale_kernel.predict(queries, thresholds)

        inserts = rng.standard_normal((3, queries.shape[1]))
        reports = estimator.update(inserts=inserts)
        assert reports and reports[0].retrained

        fresh_kernel = estimator.compiled()
        assert fresh_kernel is not stale_kernel
        after = np.asarray(estimator.estimate(queries, thresholds))
        np.testing.assert_array_equal(fresh_kernel.predict(queries, thresholds), after)
        # the fine-tune changed the weights, so the stale kernel is provably stale
        assert not np.array_equal(before, after)

    def test_every_tier_stays_within_budget_after_update(self, tiny_cosine_split, rng):
        """Mixed-dtype parity survives an incremental update: after the
        fine-tune retrains the weights, every precision tier recompiles
        from the *new* weights and still answers within its error budget."""
        estimator = _fit(
            "selnet-inc",
            tiny_cosine_split,
            update_max_epochs=1,
            update_mae_drift_threshold=-1.0,
        )
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        reports = estimator.update(inserts=rng.standard_normal((3, queries.shape[1])))
        assert reports and reports[0].retrained

        reference = np.asarray(estimator.estimate(queries, thresholds))
        for name in TIER_NAMES:
            tier = parse_tier(name)
            kernel = estimator.compiled(dtype=tier.storage_dtype, quantize=tier.quantize)
            assert kernel.precision == name
            out = kernel.predict(queries, thresholds)
            if tier.relative:
                assert relative_deviation(out, reference) <= tier.budget
            else:
                assert np.max(np.abs(out - reference)) <= tier.budget

    def test_refit_invalidates_kernel(self, tiny_cosine_split):
        estimator = _fit("selnet-ct", tiny_cosine_split)
        kernel = estimator.compiled()
        estimator.fit(tiny_cosine_split)
        assert estimator.__dict__.get("_compiled_kernel") is None
        fresh = estimator.compiled()
        assert fresh is not kernel
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        np.testing.assert_array_equal(
            fresh.predict(queries, thresholds),
            np.asarray(estimator.estimate(queries, thresholds)),
        )


# ---------------------------------------------------------------------- #
# no_grad / grad-mode propagation
# ---------------------------------------------------------------------- #
class TestGradMode:
    def test_no_grad_produces_leaf_tensors(self):
        weight = Tensor(np.ones((2, 2)), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = (Tensor(np.ones((1, 2))) @ weight).relu()
            assert not out.requires_grad
            assert out._parents == ()
            assert out._backward_fn is None
        assert is_grad_enabled()

    def test_no_grad_nests_and_restores_on_error(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_enable_grad_reenables_inside_no_grad(self):
        weight = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            with enable_grad():
                out = (weight * 2.0).sum()
                assert out.requires_grad
        out.backward()
        np.testing.assert_allclose(weight.grad, np.full(3, 2.0))

    def test_training_still_works_after_no_grad(self):
        weight = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        with no_grad():
            (weight * 3.0).sum()
        loss = (weight * weight).sum()
        loss.backward()
        np.testing.assert_allclose(weight.grad, [2.0, 4.0])

    def test_graph_mode_predict_builds_no_tape(self, tiny_cosine_split):
        estimator = _fit("selnet-ct", tiny_cosine_split)
        model = estimator.model
        queries = Tensor(tiny_cosine_split.test.queries[:4])
        with no_grad():
            out = model.forward(queries, tiny_cosine_split.test.thresholds[:4])
        assert not out.requires_grad and out._parents == ()


# ---------------------------------------------------------------------- #
# Vectorised segment lookup
# ---------------------------------------------------------------------- #
class TestSegmentLookup:
    def test_matches_per_row_searchsorted(self, rng):
        batch, points = 64, 9
        tau = np.sort(rng.random((batch, points)), axis=1)
        t = rng.random(batch)
        expected = np.empty(batch, dtype=np.int64)
        for row in range(batch):
            expected[row] = np.searchsorted(tau[row], t[row], side="left")
        expected = np.clip(expected, 1, points - 1)
        np.testing.assert_array_equal(segment_upper_indices(tau, t), expected)

    def test_piecewise_linear_gradcheck_still_clean(self, rng):
        from repro.autodiff import check_gradients

        tau_base = np.sort(rng.random((5, 6)), axis=1)
        p_base = np.cumsum(rng.random((5, 6)), axis=1)
        t = rng.uniform(0.15, 0.85, size=5)

        tau = Tensor(tau_base, requires_grad=True)
        p = Tensor(p_base, requires_grad=True)
        assert check_gradients(lambda a, b: piecewise_linear(a, b, t), [tau, p])


# ---------------------------------------------------------------------- #
# Vectorised partition indicator
# ---------------------------------------------------------------------- #
class TestIndicatorBatch:
    def test_matches_per_row_indicator(self, tiny_face_dataset, rng):
        from repro.distances import get_distance
        from repro.index import build_partitioning

        partitioning = build_partitioning(
            "ct", tiny_face_dataset.vectors, num_partitions=3,
            distance=get_distance("cosine"), seed=0,
        )
        queries = tiny_face_dataset.vectors[rng.integers(0, 600, size=32)]
        thresholds = rng.uniform(0.0, 0.6, size=32)
        batch = partitioning.indicator_batch(queries, thresholds)
        for i in range(len(queries)):
            np.testing.assert_array_equal(
                batch[i], partitioning.indicator(queries[i], thresholds[i])
            )


# ---------------------------------------------------------------------- #
# Serving integration
# ---------------------------------------------------------------------- #
class TestServingUsesCompiledKernels:
    @pytest.fixture(scope="class")
    def service_with_selnet(self, tiny_cosine_split):
        service = EstimationService(cache_capacity=64, curve_resolution=32)
        estimator = _fit("selnet-ct", tiny_cosine_split)
        service.add_model("selnet", estimator)
        return service, estimator

    def test_direct_path_is_compiled_and_exact(self, service_with_selnet, tiny_cosine_split):
        service, estimator = service_with_selnet
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        served = service.estimate("selnet", queries, thresholds, use_cache=False)
        np.testing.assert_array_equal(served, np.asarray(estimator.estimate(queries, thresholds)))
        assert service.stats()["kernels"]["selnet"]["kind"] == "selnet"
        assert service.stats()["use_compiled"] is True

    def test_cached_path_fills_misses_through_fused_curves(
        self, service_with_selnet, tiny_cosine_split
    ):
        service, _ = service_with_selnet
        queries = tiny_cosine_split.test.queries[:8]
        thresholds = tiny_cosine_split.test.thresholds[:8]
        before = service.stats()["per_model"]["selnet"]["batches"]
        service.estimate("selnet", queries, thresholds)
        after = service.stats()["per_model"]["selnet"]["batches"]
        # all distinct miss queries were filled by one fused kernel call
        assert after - before == 1

    def test_curves_for_queries_batches_and_caches(self, tiny_cosine_split):
        service = EstimationService(cache_capacity=64, curve_resolution=16)
        estimator = _fit("kde", tiny_cosine_split)
        service.add_model("kde", estimator)
        queries = np.unique(tiny_cosine_split.test.queries[:6], axis=0)
        curves = service.curves_for_queries("kde", queries)
        assert len(curves) == len(queries)
        assert len(service.cache) == len(queries)
        for curve, query in zip(curves, queries):
            expected = estimator.selectivity_curve(query, curve.thresholds)
            np.testing.assert_allclose(curve.values, expected)

    def test_fallback_curve_path_respects_max_batch_size(self, tiny_cosine_split):
        # curve_resolution > max_batch_size: each estimator call must still
        # stay within the configured micro-batch bound.
        service = EstimationService(cache_capacity=8, curve_resolution=32, max_batch_size=16)
        estimator = _fit("kde", tiny_cosine_split)
        calls = []
        original = estimator.estimate
        estimator.estimate = lambda q, t: (calls.append(len(t)), original(q, t))[1]
        service.add_model("kde", estimator)
        service.curves_for_queries("kde", tiny_cosine_split.test.queries[:3])
        assert calls and max(calls) <= 16

    def test_curve_rejects_wrong_dimensionality(self, tiny_cosine_split):
        service = EstimationService()
        service.add_model("kde", _fit("kde", tiny_cosine_split))
        with pytest.raises(ValueError, match="dimensions"):
            service.curve("kde", np.zeros(3))

    def test_graph_mode_service_matches_compiled_service(self, tiny_cosine_split):
        compiled_service = EstimationService(use_compiled=True)
        graph_service = EstimationService(use_compiled=False)
        estimator = _fit("selnet-ct", tiny_cosine_split)
        compiled_service.add_model("m", estimator)
        graph_service.add_model("m", estimator)
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        np.testing.assert_array_equal(
            compiled_service.estimate("m", queries, thresholds, use_cache=False),
            graph_service.estimate("m", queries, thresholds, use_cache=False),
        )


# ---------------------------------------------------------------------- #
# Benchmark plumbing
# ---------------------------------------------------------------------- #
class TestInferenceBenchmark:
    def test_report_rows_and_json(self, tiny_cosine_split, tmp_path):
        estimator = _fit("kde", tiny_cosine_split)
        report = run_inference_benchmark(
            {"kde": estimator},
            tiny_cosine_split.test.queries,
            tiny_cosine_split.test.thresholds,
            batch_sizes=(1, 8),
            repeats=2,
            warmup=0,
        )
        assert [row.batch_size for row in report.rows] == [1, 8]
        assert report.max_deviation() <= PARITY
        assert report.speedup_for("kde") > 0.0
        with pytest.raises(KeyError):
            report.speedup_for("nope")
        path = write_benchmark_json(report, tmp_path / "bench.json")
        payload = json.loads(path.read_text())
        assert payload["benchmark"] == "repro-inference"
        assert len(payload["rows"]) == 2
        assert "compiled (pure-NumPy kernel)" in report.text

    def test_cli_infer_bench_smoke(self, tmp_path, capsys):
        from repro.cli import main

        model_path = tmp_path / "kde-model"
        assert (
            main(
                [
                    "train", "kde", "--setting", "face-cos", "--scale", "tiny",
                    "--seed", "0", "--out", str(model_path), "--param", "num_samples=32",
                ]
            )
            == 0
        )
        output = tmp_path / "bench.json"
        code = main(
            ["infer-bench", str(model_path), "--smoke", "--output", str(output)]
        )
        assert code == 0
        assert output.is_file()
        payload = json.loads(output.read_text())
        assert payload["metadata"]["smoke"] is True
        assert {row["estimator"] for row in payload["rows"]} == {"kde-model"}
        captured = capsys.readouterr()
        assert "parity: max |compiled - graph|" in captured.out

"""Tests for the ground-truth oracle, workload generation and update streams."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    SelectivityOracle,
    apply_stream,
    apply_update,
    build_workload_split,
    generate_update_stream,
    generate_workload,
    geometric_selectivity_targets,
    make_face_like,
    relabel_workload,
    split_workload,
)
from repro.data.updates import UpdateOperation


class TestSelectivityOracle:
    @pytest.fixture(scope="class")
    def oracle(self):
        dataset = make_face_like(num_vectors=300, dim=8, seed=2)
        return SelectivityOracle(dataset.vectors, "cosine")

    def test_selectivity_counts_by_brute_force(self, oracle):
        query = oracle.data[0]
        threshold = 0.2
        distances = oracle.distances_to(query)
        assert oracle.selectivity(query, threshold) == int(np.count_nonzero(distances <= threshold))

    def test_selectivity_monotone_in_threshold(self, oracle):
        query = oracle.data[5]
        thresholds = np.linspace(0.0, 1.0, 30)
        counts = oracle.selectivities(query, thresholds)
        assert np.all(np.diff(counts) >= 0)

    def test_selectivities_matches_scalar_calls(self, oracle):
        query = oracle.data[3]
        thresholds = [0.05, 0.2, 0.6]
        batch = oracle.selectivities(query, thresholds)
        scalar = [oracle.selectivity(query, t) for t in thresholds]
        np.testing.assert_array_equal(batch, scalar)

    def test_query_from_database_counts_itself(self, oracle):
        query = oracle.data[7]
        assert oracle.selectivity(query, 0.0) >= 1

    def test_full_threshold_covers_everything(self, oracle):
        query = oracle.data[0]
        assert oracle.selectivity(query, 10.0) == oracle.num_objects

    def test_thresholds_for_selectivities(self, oracle):
        query = oracle.data[11]
        targets = [1, 5, 20, 50]
        thresholds = oracle.thresholds_for_selectivities(query, targets)
        counts = oracle.selectivities(query, thresholds)
        # The threshold of the k-th nearest neighbour yields selectivity >= k
        # (ties can only push the count up).
        for target, count in zip(targets, counts):
            assert count >= target

    def test_batch_selectivity_alignment_check(self, oracle):
        with pytest.raises(ValueError):
            oracle.batch_selectivity(oracle.data[:3], np.array([0.1, 0.2]))

    def test_max_threshold_positive(self, oracle):
        assert oracle.max_threshold() > 0


class TestGeometricTargets:
    def test_range(self):
        targets = geometric_selectivity_targets(10_000, 40)
        assert targets[0] == pytest.approx(1.0)
        assert targets[-1] == pytest.approx(100.0)
        assert len(targets) == 40

    def test_custom_fraction(self):
        targets = geometric_selectivity_targets(1000, 10, max_selectivity_fraction=0.5)
        assert targets[-1] == pytest.approx(500.0)

    def test_monotone_increasing(self):
        targets = geometric_selectivity_targets(5000, 25)
        assert np.all(np.diff(targets) > 0)


class TestWorkloadGeneration:
    @pytest.fixture(scope="class")
    def workload_and_oracle(self):
        dataset = make_face_like(num_vectors=400, dim=8, seed=3)
        return generate_workload(
            dataset, "cosine", num_queries=30, thresholds_per_query=8, seed=1
        )

    def test_row_count(self, workload_and_oracle):
        workload, _ = workload_and_oracle
        assert len(workload) == 30 * 8

    def test_labels_are_exact(self, workload_and_oracle):
        workload, oracle = workload_and_oracle
        sample = np.random.default_rng(0).choice(len(workload), size=20, replace=False)
        recomputed = oracle.batch_selectivity(
            workload.queries[sample], workload.thresholds[sample]
        )
        np.testing.assert_array_equal(recomputed, workload.selectivities[sample].astype(int))

    def test_thresholds_below_t_max(self, workload_and_oracle):
        workload, _ = workload_and_oracle
        assert np.all(workload.thresholds <= workload.t_max + 1e-12)

    def test_features_concatenation(self, workload_and_oracle):
        workload, _ = workload_and_oracle
        features = workload.features
        assert features.shape == (len(workload), workload.queries.shape[1] + 1)
        np.testing.assert_allclose(features[:, -1], workload.thresholds)

    def test_beta_distribution_thresholds(self):
        dataset = make_face_like(num_vectors=300, dim=8, seed=3)
        workload, _ = generate_workload(
            dataset,
            "cosine",
            num_queries=10,
            thresholds_per_query=12,
            threshold_distribution="beta",
            seed=5,
        )
        assert np.all(workload.thresholds >= 0)
        assert np.all(workload.thresholds <= workload.t_max)

    def test_invalid_distribution(self):
        dataset = make_face_like(num_vectors=100, dim=6)
        with pytest.raises(ValueError):
            generate_workload(dataset, "cosine", num_queries=5, threshold_distribution="uniform")

    def test_determinism(self):
        dataset = make_face_like(num_vectors=200, dim=8, seed=3)
        a, _ = generate_workload(dataset, "cosine", num_queries=10, thresholds_per_query=5, seed=7)
        b, _ = generate_workload(dataset, "cosine", num_queries=10, thresholds_per_query=5, seed=7)
        np.testing.assert_allclose(a.thresholds, b.thresholds)
        np.testing.assert_allclose(a.selectivities, b.selectivities)


class TestWorkloadSplit:
    def test_split_by_query_no_leakage(self, tiny_cosine_split):
        train_ids = set(np.unique(tiny_cosine_split.train.query_ids).tolist())
        valid_ids = set(np.unique(tiny_cosine_split.validation.query_ids).tolist())
        test_ids = set(np.unique(tiny_cosine_split.test.query_ids).tolist())
        assert not (train_ids & valid_ids)
        assert not (train_ids & test_ids)
        assert not (valid_ids & test_ids)

    def test_split_covers_all_rows(self, tiny_cosine_split):
        total = (
            len(tiny_cosine_split.train)
            + len(tiny_cosine_split.validation)
            + len(tiny_cosine_split.test)
        )
        assert total == 40 * 10

    def test_split_proportions(self, tiny_cosine_split):
        n_train = tiny_cosine_split.train.unique_query_count()
        n_valid = tiny_cosine_split.validation.unique_query_count()
        n_test = tiny_cosine_split.test.unique_query_count()
        assert n_train >= n_valid and n_train >= n_test
        assert n_valid >= 1 and n_test >= 1

    def test_invalid_fractions(self, tiny_cosine_split):
        with pytest.raises(ValueError):
            split_workload(tiny_cosine_split.train, train_fraction=0.9, validation_fraction=0.2)

    def test_build_workload_split_shares_t_max(self, tiny_cosine_split):
        assert tiny_cosine_split.train.t_max == tiny_cosine_split.test.t_max

    def test_relabel_workload(self, tiny_cosine_split):
        oracle = tiny_cosine_split.oracle
        relabelled = relabel_workload(tiny_cosine_split.validation, oracle)
        np.testing.assert_allclose(relabelled.selectivities, tiny_cosine_split.validation.selectivities)


class TestUpdateStream:
    def test_insert_grows_database(self, rng):
        data = rng.normal(size=(50, 4))
        operation = UpdateOperation(kind="insert", vectors=rng.normal(size=(5, 4)))
        assert len(apply_update(data, operation)) == 55

    def test_delete_shrinks_database(self, rng):
        data = rng.normal(size=(50, 4))
        operation = UpdateOperation(kind="delete", indices=np.array([0, 1, 2]))
        assert len(apply_update(data, operation)) == 47

    def test_operation_validation(self):
        with pytest.raises(ValueError):
            UpdateOperation(kind="upsert")
        with pytest.raises(ValueError):
            UpdateOperation(kind="insert")
        with pytest.raises(ValueError):
            UpdateOperation(kind="delete")

    def test_generate_stream_length(self, rng):
        data = rng.normal(size=(100, 4))
        stream = generate_update_stream(data, num_operations=20, records_per_operation=3, seed=1)
        assert len(stream) == 20

    def test_apply_stream_consistent_sizes(self, rng):
        data = rng.normal(size=(100, 4))
        stream = generate_update_stream(data, num_operations=15, records_per_operation=4, seed=2)
        final, states = apply_stream(data, stream)
        assert len(states) == 15
        assert len(final) == len(states[-1])
        expected = 100
        for operation, state in zip(stream, states):
            expected += 4 if operation.kind == "insert" else -4
            assert len(state) == expected

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_database_never_empty(self, seed):
        """Property: the generator never deletes the database to nothing."""
        rng = np.random.default_rng(0)
        data = rng.normal(size=(30, 3))
        stream = generate_update_stream(
            data, num_operations=30, records_per_operation=5, insert_probability=0.3, seed=seed
        )
        final, _ = apply_stream(data, stream)
        assert len(final) > 0

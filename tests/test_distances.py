"""Tests for the distance substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.distances import (
    COSINE,
    EUCLIDEAN,
    cosine_distance,
    cosine_similarity,
    cosine_threshold_to_euclidean,
    euclidean_distance,
    euclidean_threshold_to_cosine,
    get_distance,
    normalize_rows,
    pairwise_cosine_distance,
    pairwise_euclidean,
    prepare_data_for_distance,
)


class TestEuclidean:
    def test_simple_values(self):
        data = np.array([[0.0, 0.0], [3.0, 4.0]])
        np.testing.assert_allclose(euclidean_distance(np.zeros(2), data), [0.0, 5.0])

    def test_matches_numpy_norm(self, rng):
        query = rng.normal(size=8)
        data = rng.normal(size=(20, 8))
        expected = np.linalg.norm(data - query, axis=1)
        np.testing.assert_allclose(euclidean_distance(query, data), expected, atol=1e-10)

    def test_pairwise_symmetric_and_zero_diagonal(self, rng):
        points = rng.normal(size=(10, 4))
        matrix = pairwise_euclidean(points, points)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-10)
        np.testing.assert_allclose(np.diag(matrix), np.zeros(10), atol=1e-7)

    def test_pairwise_matches_rowwise(self, rng):
        a = rng.normal(size=(5, 3))
        b = rng.normal(size=(7, 3))
        matrix = pairwise_euclidean(a, b)
        for i in range(5):
            np.testing.assert_allclose(matrix[i], euclidean_distance(a[i], b), atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        points=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(3, 6), st.integers(2, 5)),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    def test_property_triangle_inequality(self, points):
        """Property: Euclidean distance satisfies the triangle inequality."""
        matrix = pairwise_euclidean(points, points)
        n = len(points)
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert matrix[i, j] <= matrix[i, k] + matrix[k, j] + 1e-7


class TestCosine:
    def test_identical_vectors_zero_distance(self, rng):
        vector = rng.normal(size=6)
        assert cosine_distance(vector, vector[None, :])[0] == pytest.approx(0.0, abs=1e-12)

    def test_opposite_vectors_distance_two(self):
        vector = np.array([1.0, 0.0])
        assert cosine_distance(vector, -vector[None, :])[0] == pytest.approx(2.0)

    def test_similarity_scale_invariant(self, rng):
        query = rng.normal(size=5)
        data = rng.normal(size=(8, 5))
        np.testing.assert_allclose(
            cosine_similarity(query, data), cosine_similarity(query * 7.0, data * 3.0), atol=1e-10
        )

    def test_distance_in_zero_two_range(self, rng):
        query = rng.normal(size=5)
        data = rng.normal(size=(50, 5))
        distances = cosine_distance(query, data)
        assert np.all(distances >= -1e-12) and np.all(distances <= 2.0 + 1e-12)

    def test_pairwise_matches_rowwise(self, rng):
        a = rng.normal(size=(4, 6))
        b = rng.normal(size=(5, 6))
        matrix = pairwise_cosine_distance(a, b)
        for i in range(4):
            np.testing.assert_allclose(matrix[i], cosine_distance(a[i], b), atol=1e-10)

    def test_unit_vector_equivalence_with_euclidean(self, rng):
        """For unit vectors: ||u - v||^2 = 2 * d_cos(u, v)."""
        u = normalize_rows(rng.normal(size=(1, 8)))[0]
        data = normalize_rows(rng.normal(size=(30, 8)))
        euclid = euclidean_distance(u, data)
        cosine = cosine_distance(u, data)
        np.testing.assert_allclose(euclid ** 2, 2.0 * cosine, atol=1e-9)


class TestNormalizeAndConversions:
    def test_normalize_rows_unit_norm(self, rng):
        data = rng.normal(size=(20, 5)) * 10
        norms = np.linalg.norm(normalize_rows(data), axis=1)
        np.testing.assert_allclose(norms, np.ones(20), atol=1e-12)

    def test_normalize_handles_zero_row(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = normalize_rows(data)
        assert np.all(np.isfinite(out))

    def test_threshold_conversion_roundtrip(self):
        for threshold in [0.0, 0.1, 0.5, 1.0, 2.0]:
            euclid = cosine_threshold_to_euclidean(threshold)
            assert euclidean_threshold_to_cosine(euclid) == pytest.approx(threshold, abs=1e-12)

    def test_threshold_conversion_preserves_selectivity(self, rng):
        """The converted threshold selects exactly the same unit vectors."""
        data = normalize_rows(rng.normal(size=(100, 6)))
        query = data[0]
        threshold = 0.15
        cosine_count = np.count_nonzero(cosine_distance(query, data) <= threshold)
        euclid_count = np.count_nonzero(
            euclidean_distance(query, data) <= cosine_threshold_to_euclidean(threshold)
        )
        assert cosine_count == euclid_count


class TestRegistry:
    def test_lookup_aliases(self):
        assert get_distance("l2") is EUCLIDEAN
        assert get_distance("Euclidean") is EUCLIDEAN
        assert get_distance("cos") is COSINE
        assert get_distance("COSINE") is COSINE

    def test_unknown_distance(self):
        with pytest.raises(KeyError):
            get_distance("manhattan")

    def test_callable_protocol(self, rng):
        query = rng.normal(size=4)
        data = rng.normal(size=(6, 4))
        np.testing.assert_allclose(EUCLIDEAN(query, data), euclidean_distance(query, data))

    def test_prepare_data_normalises_for_cosine(self, rng):
        data = rng.normal(size=(10, 4)) * 5
        prepared = prepare_data_for_distance(data, COSINE)
        np.testing.assert_allclose(np.linalg.norm(prepared, axis=1), np.ones(10), atol=1e-12)

    def test_prepare_data_untouched_for_euclidean(self, rng):
        data = rng.normal(size=(10, 4)) * 5
        np.testing.assert_allclose(prepare_data_for_distance(data, EUCLIDEAN), data)

    def test_metric_flags(self):
        assert EUCLIDEAN.is_metric
        assert COSINE.is_metric

"""Shared pytest fixtures: tiny datasets and workload splits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SelNetConfig
from repro.data import build_workload_split, make_dataset


@pytest.fixture(scope="session")
def tiny_face_dataset():
    """A small normalised clustered dataset (cosine distance)."""
    return make_dataset("face_like", num_vectors=600, dim=10, num_clusters=12, seed=5)


@pytest.fixture(scope="session")
def tiny_fasttext_dataset():
    """A small unnormalised dataset (cosine and Euclidean distance)."""
    return make_dataset("fasttext_like", num_vectors=600, dim=12, num_clusters=10, seed=5)


@pytest.fixture(scope="session")
def tiny_cosine_split(tiny_face_dataset):
    """Workload split on the tiny cosine dataset."""
    return build_workload_split(
        tiny_face_dataset, "cosine", num_queries=40, thresholds_per_query=10, seed=3
    )


@pytest.fixture(scope="session")
def tiny_euclidean_split(tiny_fasttext_dataset):
    """Workload split on the tiny Euclidean dataset."""
    return build_workload_split(
        tiny_fasttext_dataset, "euclidean", num_queries=40, thresholds_per_query=10, seed=3
    )


@pytest.fixture(scope="session")
def fast_selnet_config():
    """A SelNet configuration small enough for unit tests."""
    return SelNetConfig(
        num_control_points=6,
        latent_dim=4,
        tau_hidden_sizes=(16,),
        p_hidden_sizes=(24, 16),
        embedding_dim=6,
        ae_hidden_sizes=(16,),
        epochs=8,
        pretrain_epochs=3,
        ae_pretrain_epochs=3,
        batch_size=64,
        learning_rate=5e-3,
        early_stopping_patience=None,
        seed=1,
    )


@pytest.fixture()
def rng():
    """Fresh deterministic random generator per test."""
    return np.random.default_rng(1234)

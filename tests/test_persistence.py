"""Save/load round-trips: every registered estimator must reproduce its
estimates bit-for-bit after being persisted and reloaded in a fresh object."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import SelectivityEstimator, create_estimator, load_estimator, read_metadata
from repro.core import SelNetEstimator
from repro.persistence import SIDECAR_FILE, STATE_FILE, WEIGHTS_FILE
from repro.registry import available_estimators

#: fast fitting parameters per registry name (tiny split, a couple of epochs)
_FAST_SELNET = dict(
    num_control_points=4,
    latent_dim=3,
    tau_hidden_sizes=(8,),
    p_hidden_sizes=(12, 8),
    embedding_dim=4,
    ae_hidden_sizes=(8,),
    epochs=2,
    pretrain_epochs=1,
    ae_pretrain_epochs=1,
    batch_size=64,
    early_stopping_patience=None,
)

FAST_PARAMS = {
    "lsh": dict(num_samples=128),
    "kde": dict(num_samples=64),
    "lightgbm": dict(num_trees=6),
    "lightgbm-m": dict(num_trees=6),
    "dnn": dict(epochs=2),
    "moe": dict(epochs=2),
    "rmi": dict(epochs=2),
    "dln": dict(epochs=2),
    "umnn": dict(epochs=2, num_quadrature_points=8),
    "isotonic-dnn": dict(epochs=2),
    "selnet": dict(_FAST_SELNET, num_partitions=2),
    "selnet-ct": dict(_FAST_SELNET),
    "selnet-ad-ct": dict(_FAST_SELNET),
    "selnet-inc": dict(_FAST_SELNET, update_max_epochs=2),
}


@pytest.mark.parametrize("name", sorted(FAST_PARAMS))
def test_roundtrip_is_bit_exact(name, tiny_cosine_split, tmp_path):
    params = dict(FAST_PARAMS[name])
    params["seed"] = 0
    estimator = create_estimator(name, **params).fit(tiny_cosine_split)

    queries = tiny_cosine_split.test.queries
    thresholds = tiny_cosine_split.test.thresholds
    reference = estimator.estimate(queries, thresholds)

    path = tmp_path / name
    estimator.save(path, metadata={"setting": "unit-test"})
    loaded = load_estimator(path)

    assert type(loaded) is type(estimator)
    assert loaded.name == estimator.name
    assert loaded.guarantees_consistency == estimator.guarantees_consistency
    assert loaded.supports_updates == estimator.supports_updates
    assert loaded.expected_input_dim == queries.shape[1]
    np.testing.assert_array_equal(np.asarray(loaded.estimate(queries, thresholds)), reference)


def test_all_registered_estimators_are_covered():
    assert set(available_estimators()) == set(FAST_PARAMS)


class TestSidecar:
    @pytest.fixture(scope="class")
    def saved_kde(self, tiny_cosine_split, tmp_path_factory):
        path = tmp_path_factory.mktemp("models") / "kde"
        estimator = create_estimator("kde", num_samples=64, seed=5).fit(tiny_cosine_split)
        estimator.save(path, metadata={"setting": "face-cos", "scale": "tiny"})
        return path

    def test_sidecar_contents(self, saved_kde):
        metadata = read_metadata(saved_kde)
        assert metadata["format"] == "repro-estimator"
        assert metadata["registry_name"] == "kde"
        assert metadata["class"].endswith("KDEEstimator")
        assert metadata["guarantees_consistency"] is True
        assert metadata["supports_updates"] is False
        assert metadata["params"]["num_samples"] == 64
        assert metadata["params"]["seed"] == 5
        assert metadata["metadata"] == {"setting": "face-cos", "scale": "tiny"}

    def test_sidecar_is_valid_json_on_disk(self, saved_kde):
        with open(saved_kde / SIDECAR_FILE) as handle:
            json.load(handle)

    def test_load_via_base_class_and_subclass(self, saved_kde):
        from repro.baselines import KDEEstimator

        assert isinstance(SelectivityEstimator.load(saved_kde), KDEEstimator)
        assert isinstance(KDEEstimator.load(saved_kde), KDEEstimator)
        with pytest.raises(TypeError):
            SelNetEstimator.load(saved_kde)

    def test_missing_sidecar_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_estimator(tmp_path)


class TestNetworkCheckpoints:
    def test_selnet_weights_go_through_npz(self, tiny_cosine_split, tmp_path):
        params = dict(FAST_PARAMS["selnet-ct"], seed=0)
        estimator = create_estimator("selnet-ct", **params).fit(tiny_cosine_split)
        path = tmp_path / "selnet-ct"
        estimator.save(path)
        assert (path / WEIGHTS_FILE).is_file()
        assert (path / STATE_FILE).is_file()

        with np.load(path / WEIGHTS_FILE) as archive:
            keys = list(archive.files)
        assert keys and all(key.startswith("model::") for key in keys)
        assert len(keys) == len(estimator.model.state_dict())

    def test_mmap_load_is_bit_exact(self, tiny_cosine_split, tmp_path):
        """``load_estimator(mmap=True)`` maps weights.npz instead of reading
        it eagerly, with identical estimates — and the raw mapped views it
        loads from are byte-equal to the eager arrays."""
        from repro.nn.serialization import load_state

        params = dict(FAST_PARAMS["selnet-ct"], seed=0)
        estimator = create_estimator("selnet-ct", **params).fit(tiny_cosine_split)
        path = tmp_path / "model"
        estimator.save(path)

        eager = load_state(path / WEIGHTS_FILE)
        mapped = load_state(path / WEIGHTS_FILE, mmap=True)
        assert sorted(mapped) == sorted(eager)
        for key, array in eager.items():
            view = mapped[key]
            assert not view.flags.writeable  # read-only pages, never a copy
            np.testing.assert_array_equal(view, array)

        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        reference = np.asarray(load_estimator(path).estimate(queries, thresholds))
        via_mmap = load_estimator(path, mmap=True)
        np.testing.assert_array_equal(
            np.asarray(via_mmap.estimate(queries, thresholds)), reference
        )

    def test_corrupted_weights_are_detected(self, tiny_cosine_split, tmp_path):
        params = dict(FAST_PARAMS["selnet-ct"], seed=0)
        estimator = create_estimator("selnet-ct", **params).fit(tiny_cosine_split)
        path = tmp_path / "model"
        estimator.save(path)

        state = dict(np.load(path / WEIGHTS_FILE))
        first = next(iter(state))
        state[first] = np.zeros((1, 1))  # wrong shape
        np.savez(path / WEIGHTS_FILE.replace(".npz", ""), **state)
        with pytest.raises(ValueError):
            load_estimator(path)

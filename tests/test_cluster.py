"""Tests for the sharded estimation cluster (router, backends, facade, CLI)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import create_estimator
from repro.cli import main
from repro.cluster import (
    ClusterConfig,
    ClusterOverloadedError,
    EstimationCluster,
    ShardRouter,
    run_cluster_benchmark,
)
from repro.estimator import UpdateNotSupportedError


@pytest.fixture(scope="module")
def kde_model_dir(tiny_cosine_split, tmp_path_factory):
    """One fitted KDE saved under a model directory, for disk-backed shards."""
    directory = tmp_path_factory.mktemp("cluster-models")
    kde = create_estimator("kde", num_samples=64, seed=0).fit(tiny_cosine_split)
    kde.save(directory / "kde", metadata={"setting": "face-cos", "scale": "tiny", "seed": 0})
    return directory


@pytest.fixture(scope="module")
def fitted_kde(tiny_cosine_split):
    return create_estimator("kde", num_samples=64, seed=0).fit(tiny_cosine_split)


class TestShardRouter:
    def test_same_key_same_shard_deterministically(self, rng):
        """Acceptance: routing is a pure function of (model, query) per seed."""
        queries = rng.standard_normal((64, 6))
        first = ShardRouter(num_shards=4)
        second = ShardRouter(num_shards=4)  # a fresh ring, e.g. another process
        for i in range(len(queries)):
            assert first.route("m", queries[i]) == second.route("m", queries[i])
        np.testing.assert_array_equal(
            first.route_batch("m", queries), second.route_batch("m", queries)
        )

    def test_distinct_models_route_independently(self, rng):
        queries = rng.standard_normal((200, 5))
        router = ShardRouter(num_shards=4)
        a = router.route_batch("model-a", queries)
        b = router.route_batch("model-b", queries)
        assert not np.array_equal(a, b)

    def test_all_shards_receive_keys(self, rng):
        router = ShardRouter(num_shards=5)
        shard_ids = router.route_batch("m", rng.standard_normal((500, 4)))
        assert set(shard_ids.tolist()) == set(range(5))

    def test_adding_a_shard_remaps_few_keys(self, rng):
        queries = rng.standard_normal((600, 4))
        before = ShardRouter(num_shards=4).route_batch("m", queries)
        after = ShardRouter(num_shards=5).route_batch("m", queries)
        moved = np.mean(before != after)
        # Consistent hashing moves ~1/5 of the keys; mod-N would move ~4/5.
        assert moved < 0.5

    def test_replica_sets_are_distinct_and_ordered(self, rng):
        router = ShardRouter(num_shards=4, replication_factor=3)
        for query in rng.standard_normal((32, 4)):
            replicas = router.replicas("m", query)
            assert len(replicas) == 3 and len(set(replicas)) == 3
            assert router.route("m", query) == replicas[0]

    def test_load_aware_routing_prefers_idle_replicas(self, rng):
        router = ShardRouter(num_shards=3, replication_factor=2)
        query = rng.standard_normal(4)
        primary, secondary = router.replicas("m", query)
        loads = [0.0, 0.0, 0.0]
        assert router.route("m", query, loads=loads) == primary
        loads[primary] = 10.0
        assert router.route("m", query, loads=loads) == secondary

    def test_router_matches_cache_key_rounding(self, rng):
        router = ShardRouter(num_shards=4, decimals=2)
        query = rng.standard_normal(5)
        nearby = query + 1e-6
        assert router.route("m", query) == router.route("m", nearby)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(num_shards=0)
        with pytest.raises(ValueError):
            ShardRouter(num_shards=2, replication_factor=3)
        with pytest.raises(ValueError):
            ShardRouter(num_shards=2, virtual_nodes=0)


class TestEstimationCluster:
    def test_scatter_gather_matches_direct_estimates(self, tiny_cosine_split, fitted_kde):
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        with EstimationCluster(ClusterConfig(num_shards=3)) as cluster:
            cluster.add_model("kde", fitted_kde)
            served = cluster.estimate("kde", queries, thresholds, use_cache=False)
            np.testing.assert_array_equal(served, fitted_kde.estimate(queries, thresholds))

    def test_empty_batch(self, fitted_kde):
        with EstimationCluster(ClusterConfig(num_shards=2)) as cluster:
            cluster.add_model("kde", fitted_kde)
            result = cluster.estimate("kde", np.empty((0, 10)), np.empty(0))
            assert result.shape == (0,)

    def test_cached_traffic_spreads_and_hits(self, tiny_cosine_split, fitted_kde):
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        with EstimationCluster(ClusterConfig(num_shards=3)) as cluster:
            cluster.add_model("kde", fitted_kde)
            cluster.estimate("kde", queries, thresholds)
            cluster.estimate("kde", queries, thresholds)
            stats = cluster.stats()
            assert stats["total_requests"] == 2 * len(thresholds)
            active = [entry for entry in stats["per_shard"] if entry["requests"]]
            assert len(active) > 1, "consistent hashing should use several shards"
            for entry in active:
                assert entry["cache"]["hit_rate"] > 0.0
                assert {"p50_ms", "p95_ms", "p99_ms"} <= set(entry["latency"])

    def test_disk_backed_shards_load_models_lazily(self, kde_model_dir, tiny_cosine_split):
        queries = tiny_cosine_split.test.queries[:8]
        thresholds = tiny_cosine_split.test.thresholds[:8]
        with EstimationCluster(
            ClusterConfig(num_shards=2, model_dir=kde_model_dir)
        ) as cluster:
            served = cluster.estimate("kde", queries, thresholds, use_cache=False)
            assert served.shape == (8,)

    def test_shed_policy_bounds_the_queue(self, tiny_cosine_split, fitted_kde):
        queries = tiny_cosine_split.test.queries[:4]
        thresholds = tiny_cosine_split.test.thresholds[:4]
        config = ClusterConfig(num_shards=1, queue_capacity=2, overload_policy="shed")
        with EstimationCluster(config) as cluster:
            cluster.add_model("kde", fitted_kde)
            pending = [cluster.submit_estimate("kde", queries, thresholds) for _ in range(2)]
            with pytest.raises(ClusterOverloadedError):
                cluster.submit_estimate("kde", queries, thresholds)
            stats = cluster.stats()
            assert stats["total_shed_requests"] == len(thresholds)
            assert stats["per_shard"][0]["queue_depth"] == 2
            for future in pending:  # shed full queue drains normally
                assert future.result().shape == thresholds.shape
            assert cluster.queue_depths() == [0]

    def test_shed_on_partial_scatter_leaks_no_queue_slots(
        self, tiny_cosine_split, fitted_kde
    ):
        """A shed spanning several shards must not strand in-flight slots."""
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        config = ClusterConfig(num_shards=2, queue_capacity=1, overload_policy="shed")
        with EstimationCluster(config) as cluster:
            cluster.add_model("kde", fitted_kde)
            # The full pool routes rows to both shards (checked below), so the
            # first submission occupies both queues...
            first = cluster.submit_estimate("kde", queries, thresholds)
            assert cluster.queue_depths() == [1, 1]
            # ...and the second is refused atomically: nothing submitted, no
            # slot consumed beyond the ones the first request legitimately holds.
            with pytest.raises(ClusterOverloadedError):
                cluster.submit_estimate("kde", queries, thresholds)
            assert cluster.queue_depths() == [1, 1]
            first.result()
            assert cluster.queue_depths() == [0, 0]
            # An idle cluster accepts work again — the regression was a
            # permanently stranded slot after a partial scatter was shed.
            assert cluster.estimate("kde", queries, thresholds).shape == thresholds.shape
            assert cluster.queue_depths() == [0, 0]

    def test_block_policy_drains_the_oldest_work(self, tiny_cosine_split, fitted_kde):
        queries = tiny_cosine_split.test.queries[:4]
        thresholds = tiny_cosine_split.test.thresholds[:4]
        config = ClusterConfig(num_shards=1, queue_capacity=2, overload_policy="block")
        with EstimationCluster(config) as cluster:
            cluster.add_model("kde", fitted_kde)
            futures = [cluster.submit_estimate("kde", queries, thresholds) for _ in range(5)]
            stats = cluster.stats()
            assert stats["total_shed_requests"] == 0
            assert stats["per_shard"][0]["max_queue_depth"] == 2
            for future in futures:
                assert future.result().shape == thresholds.shape

    def test_update_fans_out_and_invalidates_every_shard(
        self, tiny_cosine_split, fast_selnet_config
    ):
        """Acceptance: one update reaches every shard's replica and cache."""
        from dataclasses import asdict

        params = asdict(fast_selnet_config)
        params.update(epochs=2, update_max_epochs=1, update_mae_drift_threshold=1e9)
        incremental = create_estimator("selnet-inc", **params).fit(tiny_cosine_split)

        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        with EstimationCluster(ClusterConfig(num_shards=2)) as cluster:
            cluster.add_model("inc", incremental)
            cluster.estimate("inc", queries, thresholds)
            sizes_before = [
                entry["worker"]["cache"]["size"] for entry in cluster.stats()["per_shard"]
            ]
            assert all(size > 0 for size in sizes_before), "both shards should cache curves"

            summaries = cluster.update("inc", inserts=np.zeros((2, 10)))
            assert [summary["shard"] for summary in summaries] == [0, 1]
            stats = cluster.stats()
            assert stats["total_updates"] == 2
            for entry in stats["per_shard"]:
                assert entry["updates"] == 1
                assert entry["worker"]["cache"]["size"] == 0, "update must drop cached curves"

        # The original in-memory estimator was never aliased into the shards:
        # fanning out the update must not have touched it.
        assert incremental.reports == []

    def test_update_unsupported_raises(self, fitted_kde):
        with EstimationCluster(ClusterConfig(num_shards=2)) as cluster:
            cluster.add_model("kde", fitted_kde)
            with pytest.raises(UpdateNotSupportedError):
                cluster.update("kde", inserts=np.zeros((1, 10)))

    def test_closed_cluster_rejects_work(self, fitted_kde):
        cluster = EstimationCluster(ClusterConfig(num_shards=1))
        cluster.add_model("kde", fitted_kde)
        cluster.close()
        with pytest.raises(RuntimeError, match="closed"):
            cluster.estimate("kde", np.zeros((1, 10)), np.zeros(1))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_shards=0)
        with pytest.raises(ValueError):
            ClusterConfig(backend="thread")
        with pytest.raises(ValueError):
            ClusterConfig(overload_policy="drop")
        with pytest.raises(ValueError):
            ClusterConfig(queue_capacity=0)
        with pytest.raises(TypeError):
            EstimationCluster(ClusterConfig(), num_shards=3)


class TestProcessBackend:
    def test_process_shards_match_direct_estimates(self, kde_model_dir, tiny_cosine_split):
        queries = tiny_cosine_split.test.queries[:12]
        thresholds = tiny_cosine_split.test.thresholds[:12]
        direct = create_estimator("kde", num_samples=64, seed=0).fit(tiny_cosine_split)
        with EstimationCluster(
            ClusterConfig(num_shards=2, model_dir=kde_model_dir, backend="process")
        ) as cluster:
            served = cluster.estimate("kde", queries, thresholds, use_cache=False)
            np.testing.assert_array_equal(served, direct.estimate(queries, thresholds))
            stats = cluster.stats()
            assert stats["backend"] == "process"
            assert stats["total_requests"] == 12


class TestClusterBenchmark:
    def test_benchmark_reports_required_metrics(self, kde_model_dir, tiny_cosine_split):
        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        with EstimationCluster(
            ClusterConfig(num_shards=2, model_dir=kde_model_dir, cache_capacity=8)
        ) as cluster:
            report = run_cluster_benchmark(
                cluster,
                "kde",
                queries,
                thresholds,
                num_requests=300,
                arrival_batch=16,
                scenario="zipfian",
                seed=1,
            )
        assert report.num_requests == 300
        assert report.requests_per_second > 0
        assert report.p50_batch_latency_ms <= report.p95_batch_latency_ms
        assert report.p95_batch_latency_ms <= report.p99_batch_latency_ms
        for entry in report.stats["per_shard"]:
            assert "hit_rate" in entry["cache"]
            assert "max_queue_depth" in entry
        text = report.text
        assert "hit rate" in text and "queue max" in text and "p99 ms" in text

    def test_partitioned_caches_beat_one_process(self, kde_model_dir, tiny_cosine_split):
        """Acceptance: ≥2 shards outperform single-process serve-bench on zipfian.

        The per-worker cache is sized below the zipfian working set, so the
        sharded tier's aggregate (partitioned) cache yields a strictly higher
        hit rate — deterministic for a seeded stream — and the saved curve
        rebuilds show up as throughput.
        """
        from repro.serving import EstimationService, run_serving_benchmark

        queries = tiny_cosine_split.test.queries
        thresholds = tiny_cosine_split.test.thresholds
        capacity = 2
        service = EstimationService(kde_model_dir, cache_capacity=capacity)
        baseline = run_serving_benchmark(
            service,
            "kde",
            queries,
            thresholds,
            num_requests=800,
            arrival_batch=32,
            scenario="zipfian",
            seed=1,
        )
        with EstimationCluster(
            ClusterConfig(num_shards=4, model_dir=kde_model_dir, cache_capacity=capacity)
        ) as cluster:
            report = run_cluster_benchmark(
                cluster,
                "kde",
                queries,
                thresholds,
                num_requests=800,
                arrival_batch=32,
                scenario="zipfian",
                seed=1,
            )
        hits = sum(entry["cache"]["hits"] for entry in report.stats["per_shard"])
        misses = sum(entry["cache"]["misses"] for entry in report.stats["per_shard"])
        cluster_hit_rate = hits / (hits + misses)
        assert cluster_hit_rate > baseline.cache_hit_rate
        assert report.requests_per_second > baseline.requests_per_second

    def test_update_heavy_scenario_applies_updates(
        self, tiny_cosine_split, fast_selnet_config
    ):
        from dataclasses import asdict

        params = asdict(fast_selnet_config)
        params.update(epochs=2, update_max_epochs=1, update_mae_drift_threshold=1e9)
        incremental = create_estimator("selnet-inc", **params).fit(tiny_cosine_split)
        with EstimationCluster(ClusterConfig(num_shards=2)) as cluster:
            cluster.add_model("inc", incremental)
            report = run_cluster_benchmark(
                cluster,
                "inc",
                tiny_cosine_split.test.queries,
                tiny_cosine_split.test.thresholds,
                num_requests=200,
                arrival_batch=16,
                scenario="update-heavy",
                seed=0,
            )
        assert report.updates_applied > 0
        assert report.updates_skipped == 0


class TestClusterCLI:
    def test_cluster_bench_command(self, tmp_path, capsys):
        out_dir = tmp_path / "kde-tiny"
        assert (
            main(
                [
                    "train",
                    "kde",
                    "--setting",
                    "face-cos",
                    "--scale",
                    "tiny",
                    "--out",
                    str(out_dir),
                    "--param",
                    "num_samples=64",
                ]
            )
            == 0
        )
        capsys.readouterr()
        exit_code = main(
            [
                "cluster-bench",
                str(out_dir),
                "--shards",
                "2",
                "--requests",
                "200",
                "--cache-size",
                "4",
                "--seed",
                "1",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "cluster-bench" in out and "shards=2" in out
        assert "hit rate" in out and "queue max" in out and "p99 ms" in out
        assert "cluster speedup" in out and "baseline (1 proc)" in out

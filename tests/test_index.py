"""Tests for the cover tree and the database partitioners."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import make_face_like, make_fasttext_like
from repro.distances import get_distance
from repro.index import (
    BallRegion,
    CoverTree,
    build_partitioning,
    cover_tree_partitioning,
    kmeans_partitioning,
    merge_regions_balanced,
    random_partitioning,
)


@pytest.fixture(scope="module")
def small_data():
    return make_face_like(num_vectors=400, dim=8, seed=9).vectors


class TestCoverTree:
    def test_all_points_stored(self, small_data):
        tree = CoverTree(small_data, "euclidean", min_region_size=30)
        assert tree.num_points() == len(small_data)

    def test_leaf_regions_partition_the_data(self, small_data):
        tree = CoverTree(small_data, "euclidean", min_region_size=30)
        regions = tree.leaf_regions()
        counts = np.zeros(len(small_data), dtype=int)
        for region in regions:
            counts[region.point_indices] += 1
        assert np.all(counts == 1)

    def test_region_radius_covers_members(self, small_data):
        tree = CoverTree(small_data, "euclidean", min_region_size=30)
        distance = get_distance("euclidean")
        for region in tree.leaf_regions():
            if region.size == 0:
                continue
            distances = distance(region.center, small_data[region.point_indices])
            assert np.all(distances <= region.radius + 1e-9)

    def test_min_region_size_respected_roughly(self, small_data):
        """Expansion stops at small nodes, so most regions are modest in size."""
        tree = CoverTree(small_data, "euclidean", min_region_size=50)
        sizes = [region.size for region in tree.leaf_regions()]
        assert max(sizes) <= len(small_data)
        assert len(sizes) >= 2

    def test_rejects_empty_data(self):
        with pytest.raises(ValueError):
            CoverTree(np.zeros((0, 3)), "euclidean")

    def test_rejects_non_metric(self, small_data):
        from dataclasses import replace

        fake = replace(get_distance("euclidean"), is_metric=False)
        with pytest.raises(ValueError):
            CoverTree(small_data, fake)

    def test_depth_positive(self, small_data):
        tree = CoverTree(small_data, "euclidean", min_region_size=20)
        assert tree.depth() >= 1

    def test_deterministic_given_seed(self, small_data):
        a = CoverTree(small_data, "euclidean", min_region_size=30, seed=4)
        b = CoverTree(small_data, "euclidean", min_region_size=30, seed=4)
        assert [r.size for r in a.leaf_regions()] == [r.size for r in b.leaf_regions()]


class TestRegionMerging:
    def _regions(self, sizes):
        return [
            BallRegion(center=np.zeros(2), radius=1.0, point_indices=np.arange(size))
            for size in sizes
        ]

    def test_merges_into_requested_count(self):
        clusters = merge_regions_balanced(self._regions([10, 8, 6, 4, 2]), 2)
        assert len(clusters) == 2

    def test_balanced_sizes(self):
        clusters = merge_regions_balanced(self._regions([10, 10, 10, 10, 10, 10]), 3)
        totals = [sum(region.size for region in cluster) for cluster in clusters]
        assert max(totals) - min(totals) <= 10

    def test_greedy_largest_first(self):
        clusters = merge_regions_balanced(self._regions([100, 1, 1, 1]), 2)
        totals = sorted(sum(region.size for region in cluster) for cluster in clusters)
        assert totals == [3, 100]

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            merge_regions_balanced(self._regions([5]), 0)


class TestPartitionings:
    @pytest.mark.parametrize("method", ["ct", "rp", "km"])
    def test_partitions_cover_database(self, small_data, method):
        partitioning = build_partitioning(method, small_data, num_partitions=4, distance="euclidean")
        assert partitioning.num_partitions == 4
        assert partitioning.sizes().sum() == len(small_data)

    def test_unknown_method(self, small_data):
        with pytest.raises(KeyError):
            build_partitioning("metis", small_data)

    def test_cover_tree_partition_sizes_balanced(self, small_data):
        partitioning = cover_tree_partitioning(small_data, num_partitions=4, distance="euclidean")
        sizes = partitioning.sizes()
        assert sizes.max() <= 2.5 * max(sizes.min(), 1)

    def test_random_partitioning_always_active(self, small_data):
        partitioning = random_partitioning(small_data, num_partitions=3, seed=1)
        indicator = partitioning.indicator(small_data[0], 0.1)
        np.testing.assert_allclose(indicator, np.ones(3))

    def test_kmeans_partitioning_ball_covers_members(self, small_data):
        partitioning = kmeans_partitioning(small_data, num_partitions=3, distance="euclidean")
        distance = get_distance("euclidean")
        for partition in partitioning.partitions:
            if partition.size == 0:
                continue
            region = partition.regions[0]
            distances = distance(region.center, small_data[partition.point_indices])
            assert np.all(distances <= region.radius + 1e-9)

    def test_indicator_soundness(self, small_data):
        """If a partition holds any object inside the query ball, its
        indicator entry must be 1 (no false negatives)."""
        partitioning = cover_tree_partitioning(small_data, num_partitions=4, distance="euclidean")
        distance = get_distance("euclidean")
        rng = np.random.default_rng(0)
        for _ in range(10):
            query = small_data[rng.integers(len(small_data))]
            threshold = rng.uniform(0.05, 0.5)
            indicator = partitioning.indicator(query, threshold)
            for k, partition in enumerate(partitioning.partitions):
                if partition.size == 0:
                    continue
                members = small_data[partition.point_indices]
                has_member_in_ball = np.any(distance(query, members) <= threshold)
                if has_member_in_ball:
                    assert indicator[k] == 1.0

    def test_indicator_batch_shape(self, small_data):
        partitioning = cover_tree_partitioning(small_data, num_partitions=3, distance="euclidean")
        queries = small_data[:5]
        thresholds = np.full(5, 0.2)
        batch = partitioning.indicator_batch(queries, thresholds)
        assert batch.shape == (5, 3)
        assert set(np.unique(batch)).issubset({0.0, 1.0})

    def test_local_labels_sum_to_global(self, small_data):
        """Observation 1: per-partition selectivities sum to the global one."""
        partitioning = cover_tree_partitioning(small_data, num_partitions=3, distance="euclidean")
        distance = get_distance("euclidean")
        rng = np.random.default_rng(1)
        queries = small_data[rng.choice(len(small_data), size=6, replace=False)]
        thresholds = rng.uniform(0.05, 0.6, size=6)
        local = partitioning.local_selectivity_labels(queries, thresholds)
        for i, (query, threshold) in enumerate(zip(queries, thresholds)):
            total = np.count_nonzero(distance(query, small_data) <= threshold)
            assert local[i].sum() == pytest.approx(total)

    def test_cover_tree_on_cosine_distance(self):
        data = make_fasttext_like(num_vectors=300, dim=10, seed=4).vectors
        partitioning = cover_tree_partitioning(data, num_partitions=3, distance="cosine")
        assert partitioning.sizes().sum() == len(data)

    @settings(max_examples=10, deadline=None)
    @given(num_partitions=st.integers(2, 6), seed=st.integers(0, 100))
    def test_property_random_partitioning_disjoint_cover(self, num_partitions, seed):
        """Property: random partitioning is always a disjoint cover."""
        rng = np.random.default_rng(0)
        data = rng.normal(size=(120, 5))
        partitioning = random_partitioning(data, num_partitions=num_partitions, seed=seed)
        counts = np.zeros(len(data), dtype=int)
        for partition in partitioning.partitions:
            counts[partition.point_indices] += 1
        assert np.all(counts == 1)

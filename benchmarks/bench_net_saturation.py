"""Network serving tier — saturation knees and shm-vs-pickling transport.

Not a paper table: this benchmark measures the repo's own network tier
(`repro.net`).  Each scenario stands up a real loopback TCP server over
shared-memory worker shards and sweeps *offered* load (open loop: batches
are sent on a fixed wall-clock schedule regardless of server progress); the
knee of a scenario is the highest offered rate the tier still sustains.  A
transport micro-benchmark rides along, comparing single-batch round trips
through the ``network`` backend's shared-memory slots against the
``process`` backend's pickled executor arguments — the zero-copy data plane
must win.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro import create_estimator
from repro.eval.harness import build_setting_split
from repro.net import (
    SaturationScenario,
    run_saturation_benchmark,
    transport_roundtrip_compare,
)

SCENARIOS = (
    SaturationScenario(name="fixed-1shard", num_shards=1),
    SaturationScenario(name="fixed-2shard", num_shards=2),
    SaturationScenario(
        name="autoscale-1to4", num_shards=1, autoscale=True, min_shards=1, max_shards=4
    ),
)
OFFERED_LOADS = (250.0, 1000.0, 4000.0)
DURATION_SECONDS = 1.0
BATCH_SIZE = 32
CONNECTIONS = 4
COMPARE_BATCHES = (32, 128)
SEED = 0


def _sweep(tiny_scale):
    split = build_setting_split("face-cos", tiny_scale, seed=0)
    estimator = create_estimator("kde", num_samples=128, seed=0).fit(split)
    folds = (split.train, split.validation, split.test)
    queries = np.concatenate([fold.queries for fold in folds])
    thresholds = np.concatenate([fold.thresholds for fold in folds])

    reports = [
        run_saturation_benchmark(
            scenario,
            "kde",
            queries,
            thresholds,
            estimator=estimator,
            offered_loads=OFFERED_LOADS,
            duration_seconds=DURATION_SECONDS,
            batch_size=BATCH_SIZE,
            connections=CONNECTIONS,
            seed=SEED,
        )
        for scenario in SCENARIOS
    ]
    compare = transport_roundtrip_compare(
        estimator, "kde", queries, thresholds, batch_sizes=COMPARE_BATCHES, repeats=15
    )
    return reports, compare


def _format(reports, compare) -> str:
    lines = ["Network tier saturation on face-cos [tiny]"]
    for report in reports:
        lines.append(report.text)
    lines.append("Transport round trip (1 worker shard, median ms/batch):")
    network = compare["network"]["median_roundtrip_ms"]
    process = compare["process"]["median_roundtrip_ms"]
    for key in network:
        speedup = compare["speedup_process_over_network"][key]
        lines.append(
            f"  batch {key:>4}: shm {network[key]:7.3f} ms  "
            f"pickling {process[key]:7.3f} ms  ({speedup:.2f}x)"
        )
    return "\n".join(lines)


def test_net_saturation(tiny_scale, save_result, benchmark):
    reports, compare = run_once(benchmark, lambda: _sweep(tiny_scale))
    save_result("net_saturation", _format(reports, compare))
    by_name = {report.scenario: report for report in reports}
    for report in reports:
        assert report.knee_rps > 0
        assert all(point.batches_completed > 0 for point in report.points)
    assert by_name["fixed-2shard"].final_shards == 2
    autoscaled = by_name["autoscale-1to4"]
    assert autoscaled.final_shards >= 1
    # The zero-copy shm data plane must beat pickling for at least one (and
    # in practice every) batch size.
    speedups = compare["speedup_process_over_network"]
    assert max(speedups.values()) > 1.0

"""Table 2 — accuracy of every model on fasttext-l2 (Euclidean distance).

Paper reference: SelNet MSE 7.87e5 vs KDE 31.4e5 / UMNN 43.0e5; LSH is absent
because SimHash only supports cosine distance.

Reproduction status: this is the one accuracy setting whose headline ordering
does **not** fully reproduce at laptop scale — on the synthetic unnormalised
Euclidean workload SelNet's validation error is competitive but its test
error degrades sharply (see EXPERIMENTS.md, "Known deviations").  The
benchmark therefore asserts the structural facts that do hold (LSH excluded
for Euclidean distance, SelNet beats the lattice-regression baseline on the
validation split) and reports the full table for inspection.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_accuracy_table


def test_table2_fasttext_l2(scale, save_result, benchmark):
    result = run_once(benchmark, lambda: run_accuracy_table("fasttext-l2", scale=scale))
    save_result("table2_fasttext_l2", result.text)
    models = {row["model"]: row for row in result.rows}
    assert "LSH" not in models  # SimHash LSH only supports cosine distance
    # Paper's Section 6.2 claim that does reproduce on this setting: the
    # lattice-regression family (DLN) underfits the selectivity curve and is
    # beaten by SelNet.
    assert models["SelNet"]["mse_valid"] < models["DLN"]["mse_valid"]

#!/usr/bin/env python
"""Render the aggregate performance trajectory from committed BENCH_*.json.

Thin wrapper over :mod:`repro.bench_report` (also exposed as the
``repro bench-report`` CLI subcommand)::

    python benchmarks/bench_report.py [--root REPO_DIR] [--output OUT.json]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench_report import bench_report  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=str(Path(__file__).resolve().parent.parent),
        help="directory holding the BENCH_*.json artifacts (default: repo root)",
    )
    parser.add_argument(
        "--output", default=None, help="also write the merged reports as JSON"
    )
    args = parser.parse_args()
    print(bench_report(args.root, output=args.output))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Pipeline benchmark: executor backends compared, cold vs warm, per-stage CPU.

Unlike the ``bench_table*.py`` / ``bench_figure*.py`` files (pytest-benchmark
reproductions of individual paper tables), this is a standalone script — like
``repro oracle-bench`` / ``repro infer-bench`` it tracks one of the repo's own
hot paths: the declarative experiment pipeline (:mod:`repro.pipeline`).

For each executor backend (``thread`` and ``process`` by default) it runs one
multi-model accuracy experiment **twice** against that backend's own artifact
store:

* **cold** — empty store, every stage (dataset synthesis, exact workload
  labeling, model training, evaluation) is built and persisted; per-stage
  ``cpu_seconds`` (``time.thread_time`` inside the stage's worker) separate
  compute from coordination;
* **warm** — same specs again, asserting every stage replays from the store
  (100 % cache hits) and measuring the replay cost.

It then byte-compares the two backends' evaluation artifacts (timing
measurement fields excluded — see ``EvalSpec.TIMING_FIELDS``): the process
backend must produce **identical results**, its only legitimate difference
being wall-clock.  ``speedup_process_over_thread`` reports the cold-run
ratio; on a multi-core machine the GIL-free training branches put it well
above 1, so the committed numbers always carry ``cpu_count`` metadata for
context.  The exit code gates on correctness (warm passes fully cached,
evals identical) — speedup is reported, not asserted, because it is a
property of the machine, not the code.

The committed ``BENCH_pipeline.json`` at the repo root records the numbers::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --output BENCH_pipeline.json

Use ``--scale tiny --models KDE,LightGBM-m`` for a quick smoke run.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.cli import _eval_digests
from repro.eval import run_setting
from repro.experiments import get_scale
from repro.pipeline import ArtifactStore, use_store

DEFAULT_MODELS = "LSH,KDE,LightGBM,LightGBM-m,DNN,RMI,SelNet"
DEFAULT_EXECUTORS = "thread,process"


def _cpu_metadata() -> dict:
    try:
        available = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        available = os.cpu_count() or 1
    return {"cpu_count": os.cpu_count() or 1, "cpus_available": available}


def run_executor_passes(
    executor: str,
    setting: str,
    scale,
    models,
    seed: int,
    num_workers,
    store_root,
) -> dict:
    """Cold + warm passes of one executor backend over its own store."""
    passes = {}
    for label in ("cold", "warm"):
        store = ArtifactStore(store_root)
        start = time.perf_counter()
        with use_store(store):
            evaluation = run_setting(
                setting,
                scale,
                models=models,
                seed=seed,
                num_workers=num_workers,
                executor=executor,
            )
        elapsed = time.perf_counter() - start
        report = evaluation.pipeline_report
        passes[label] = {
            "elapsed_seconds": elapsed,
            "pipeline": report.as_dict(),
            "store_stats": store.stats.as_dict(),
        }
    passes["eval_digests"] = _eval_digests(ArtifactStore(store_root))
    return passes


def run_pipeline_benchmark(
    setting: str = "face-cos",
    scale_name: str = "small",
    models=None,
    seed: int = 0,
    num_workers=None,
    store_root=None,
    executors=("thread", "process"),
):
    """Cold + warm pipeline passes per executor backend, plus identity check.

    ``store_root`` must name a directory shared by both passes of each
    backend — every backend gets its own subdirectory (``<root>/thread``,
    ``<root>/process``), so cold runs never share artifacts across backends
    and the cross-backend digest comparison is meaningful.
    """
    if store_root is None:
        raise ValueError(
            "store_root is required: the warm pass can only replay artifacts "
            "the cold pass persisted to a shared on-disk store"
        )
    scale = get_scale(scale_name)
    models = list(models) if models else DEFAULT_MODELS.split(",")
    executors = list(executors)

    backends = {}
    for executor in executors:
        backends[executor] = run_executor_passes(
            executor,
            setting,
            scale,
            models,
            seed,
            num_workers,
            Path(store_root) / executor,
        )

    digests = [backends[executor]["eval_digests"] for executor in executors]
    evals_identical = all(d == digests[0] and d for d in digests)

    summary = {
        "benchmark": "repro-pipeline",
        "metadata": {
            "setting": setting,
            "scale": scale.name,
            "models": models,
            "seed": seed,
            "store": str(store_root),
            "executors": executors,
            **_cpu_metadata(),
        },
        "backends": backends,
        "evals_identical_across_executors": evals_identical,
        "warm_all_cached": all(
            backends[executor]["warm"]["pipeline"]["all_cached"]
            for executor in executors
        ),
    }
    if "thread" in backends and "process" in backends:
        summary["speedup_process_over_thread"] = backends["thread"]["cold"][
            "elapsed_seconds"
        ] / max(backends["process"]["cold"]["elapsed_seconds"], 1e-9)
    # Kept for dashboards that tracked the single-backend era: the first
    # backend's passes under the historical keys.
    summary["cold"] = backends[executors[0]]["cold"]
    summary["warm"] = backends[executors[0]]["warm"]
    summary["speedup_warm_over_cold"] = summary["cold"]["elapsed_seconds"] / max(
        summary["warm"]["elapsed_seconds"], 1e-9
    )
    return summary


def format_report(summary) -> str:
    metadata = summary["metadata"]
    lines = [
        f"Pipeline benchmark: {metadata['setting']} [{metadata['scale']} scale], "
        f"{len(metadata['models'])} models, "
        f"{metadata['cpus_available']}/{metadata['cpu_count']} cpus",
    ]
    for executor, passes in summary["backends"].items():
        lines.append("")
        lines.append(
            f"[{executor}] cold {passes['cold']['elapsed_seconds']:.2f} s "
            f"(cpu {passes['cold']['pipeline']['cpu_seconds']:.2f} s), "
            f"warm {passes['warm']['elapsed_seconds']:.2f} s, warm cache hits "
            f"{passes['warm']['pipeline']['cache_hits']}/"
            f"{len(passes['warm']['pipeline']['stages'])}"
        )
        header = f"{'stage':<46} {'cold (s)':>10} {'cpu (s)':>9} {'warm':>9}"
        lines += [header, "-" * len(header)]
        warm_by_hash = {
            stage["hash"]: stage for stage in passes["warm"]["pipeline"]["stages"]
        }
        for stage in passes["cold"]["pipeline"]["stages"]:
            warm_stage = warm_by_hash.get(stage["hash"])
            if warm_stage is None:
                # Warm runs prune upstream stages whose dependents replay
                # from their own artifacts — the best case: zero warm cost.
                warm_text = "pruned"
            else:
                warm_text = str(warm_stage.get("cached") or "built")
            lines.append(
                f"{stage['name']:<46} {stage['seconds']:>10.3f} "
                f"{stage.get('cpu_seconds', 0.0):>9.3f} {warm_text:>9}"
            )
    lines.append("")
    if "speedup_process_over_thread" in summary:
        lines.append(
            f"process-over-thread cold speedup: "
            f"{summary['speedup_process_over_thread']:.2f}x"
        )
    lines.append(
        "evals identical across executors: "
        f"{summary['evals_identical_across_executors']}"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--setting", default="face-cos")
    parser.add_argument("--scale", default="small", help="tiny, small or medium")
    parser.add_argument(
        "--models", default=DEFAULT_MODELS, help="comma-separated display names"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--num-workers", type=int, default=None)
    parser.add_argument(
        "--executors",
        default=DEFAULT_EXECUTORS,
        help="comma-separated executor backends to compare (thread,process)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="store directory to benchmark against (default: a temp dir); "
        "each backend uses its own subdirectory",
    )
    parser.add_argument(
        "--output", default=None, help="write the JSON report here (e.g. BENCH_pipeline.json)"
    )
    args = parser.parse_args(argv)

    temp_root = None
    store_root = args.store
    if store_root is None:
        temp_root = tempfile.mkdtemp(prefix="repro-bench-pipeline-")
        store_root = temp_root
    try:
        summary = run_pipeline_benchmark(
            setting=args.setting,
            scale_name=args.scale,
            models=[name for name in args.models.split(",") if name],
            seed=args.seed,
            num_workers=args.num_workers,
            store_root=store_root,
            executors=[name for name in args.executors.split(",") if name],
        )
    finally:
        if temp_root is not None:
            shutil.rmtree(temp_root, ignore_errors=True)

    print(format_report(summary))
    if args.output:
        path = Path(args.output)
        path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    failed = False
    if not summary["warm_all_cached"]:
        print("FAILURE: a warm pass was not fully cached", file=sys.stderr)
        failed = True
    if not summary["evals_identical_across_executors"]:
        print(
            "FAILURE: evaluation artifacts differ across executors",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

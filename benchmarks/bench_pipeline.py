#!/usr/bin/env python
"""Pipeline benchmark: per-stage wall-clock and cache-hit stats, cold vs warm.

Unlike the ``bench_table*.py`` / ``bench_figure*.py`` files (pytest-benchmark
reproductions of individual paper tables), this is a standalone script — like
``repro oracle-bench`` / ``repro infer-bench`` it tracks one of the repo's own
hot paths: the declarative experiment pipeline (:mod:`repro.pipeline`).

It runs one experiment **twice** against a throwaway artifact store:

* **cold** — empty store, every stage (dataset synthesis, exact workload
  labeling, model training, evaluation) is built and persisted;
* **warm** — same specs again, asserting every stage replays from the store
  (100 % cache hits) and measuring the replay cost.

The committed ``BENCH_pipeline.json`` at the repo root records the numbers::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --output BENCH_pipeline.json

Use ``--scale tiny`` / ``--models KDE,LightGBM-m`` for a quick smoke run.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.eval import run_setting
from repro.experiments import get_scale
from repro.pipeline import ArtifactStore, use_store

DEFAULT_MODELS = "LSH,KDE,LightGBM,LightGBM-m,DNN,RMI,SelNet"


def run_pipeline_benchmark(
    setting: str = "face-cos",
    scale_name: str = "small",
    models=None,
    seed: int = 0,
    num_workers=None,
    store_root=None,
):
    """Cold + warm pipeline passes over one accuracy experiment.

    ``store_root`` must name a directory shared by both passes — each pass
    constructs its own ``ArtifactStore`` instance over it, so the warm pass
    sees only what the cold pass persisted to disk.
    """
    if store_root is None:
        raise ValueError(
            "store_root is required: the warm pass can only replay artifacts "
            "the cold pass persisted to a shared on-disk store"
        )
    scale = get_scale(scale_name)
    models = list(models) if models else DEFAULT_MODELS.split(",")

    passes = {}
    for label in ("cold", "warm"):
        store = ArtifactStore(store_root)
        start = time.perf_counter()
        with use_store(store):
            evaluation = run_setting(
                setting, scale, models=models, seed=seed, num_workers=num_workers
            )
        elapsed = time.perf_counter() - start
        report = evaluation.pipeline_report
        passes[label] = {
            "elapsed_seconds": elapsed,
            "pipeline": report.as_dict(),
            "store_stats": store.stats.as_dict(),
        }

    cold, warm = passes["cold"], passes["warm"]
    summary = {
        "benchmark": "repro-pipeline",
        "metadata": {
            "setting": setting,
            "scale": scale.name,
            "models": models,
            "seed": seed,
            "store": str(store_root),
        },
        "cold": cold,
        "warm": warm,
        "speedup_warm_over_cold": cold["elapsed_seconds"]
        / max(warm["elapsed_seconds"], 1e-9),
        "warm_all_cached": warm["pipeline"]["all_cached"],
    }
    return summary


def format_report(summary) -> str:
    lines = [
        f"Pipeline benchmark: {summary['metadata']['setting']} "
        f"[{summary['metadata']['scale']} scale], "
        f"{len(summary['metadata']['models'])} models",
        f"{'stage':<46} {'cold (s)':>10} {'warm (s)':>10} {'warm src':>9}",
    ]
    lines.append("-" * len(lines[-1]))
    warm_by_hash = {
        stage["hash"]: stage for stage in summary["warm"]["pipeline"]["stages"]
    }
    for stage in summary["cold"]["pipeline"]["stages"]:
        warm_stage = warm_by_hash.get(stage["hash"])
        if warm_stage is None:
            # Warm runs prune upstream stages whose dependents replay from
            # their own artifacts — the best case: zero warm cost.
            lines.append(f"{stage['name']:<46} {stage['seconds']:>10.3f} {'-':>10} {'pruned':>9}")
            continue
        source = warm_stage.get("cached") or "built"
        lines.append(
            f"{stage['name']:<46} {stage['seconds']:>10.3f} "
            f"{warm_stage['seconds']:>10.3f} {source:>9}"
        )
    lines.append(
        f"total: cold {summary['cold']['elapsed_seconds']:.2f} s, "
        f"warm {summary['warm']['elapsed_seconds']:.2f} s "
        f"({summary['speedup_warm_over_cold']:.1f}x), "
        f"warm cache hits "
        f"{summary['warm']['pipeline']['cache_hits']}/"
        f"{len(summary['warm']['pipeline']['stages'])}"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--setting", default="face-cos")
    parser.add_argument("--scale", default="small", help="tiny, small or medium")
    parser.add_argument(
        "--models", default=DEFAULT_MODELS, help="comma-separated display names"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--num-workers", type=int, default=None)
    parser.add_argument(
        "--store",
        default=None,
        help="store directory to benchmark against (default: a temp dir)",
    )
    parser.add_argument(
        "--output", default=None, help="write the JSON report here (e.g. BENCH_pipeline.json)"
    )
    args = parser.parse_args(argv)

    temp_root = None
    store_root = args.store
    if store_root is None:
        temp_root = tempfile.mkdtemp(prefix="repro-bench-pipeline-")
        store_root = temp_root
    try:
        summary = run_pipeline_benchmark(
            setting=args.setting,
            scale_name=args.scale,
            models=[name for name in args.models.split(",") if name],
            seed=args.seed,
            num_workers=args.num_workers,
            store_root=store_root,
        )
    finally:
        if temp_root is not None:
            shutil.rmtree(temp_root, ignore_errors=True)

    print(format_report(summary))
    if args.output:
        path = Path(args.output)
        path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    if not summary["warm_all_cached"]:
        print("FAILURE: warm pass was not fully cached", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Table 5 — empirical monotonicity (%) on face-cos.

Paper reference: every model marked with * (LSH, KDE, LightGBM-m, DLN, UMNN,
SelNet) scores 100 %; the unconstrained regressors (DNN 78.22, MoE 94.82,
RMI 90.48, LightGBM 86.34) do not.  The reproduction asserts exactly that
split: consistent-by-construction models must measure 100 %.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_monotonicity_table


def test_table5_monotonicity(scale, save_result, benchmark):
    result = run_once(benchmark, lambda: run_monotonicity_table("face-cos", scale=scale))
    save_result("table5_monotonicity", result.text)
    for row in result.rows:
        if row["model"] == "UMNN":
            # UMNN is monotone only up to Clenshaw-Curtis quadrature error
            # (its nodes move with the threshold), so tiny violations can
            # appear when the learned derivative changes quickly; the paper
            # measures 100% on its workloads, we tolerate sub-percent error.
            assert row["monotonicity_percent"] >= 98.0, row["model"]
        elif row["consistent"]:
            assert row["monotonicity_percent"] >= 99.999, row["model"]
        else:
            # Unconstrained models are not required to violate monotonicity,
            # but they must at least be measured.
            assert 0.0 <= row["monotonicity_percent"] <= 100.0

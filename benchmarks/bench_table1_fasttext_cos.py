"""Table 1 — accuracy of every model on fasttext-cos.

Paper reference values (fasttext-cos, test split): SelNet MSE 5.08e5,
best prior consistent model (UMNN) 24.69e5, i.e. SelNet wins by ~4.9x in MSE
and wins MAE/MAPE as well.  The reproduction checks the same ordering at the
synthetic laptop scale.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_accuracy_table


def test_table1_fasttext_cos(scale, save_result, benchmark):
    result = run_once(benchmark, lambda: run_accuracy_table("fasttext-cos", scale=scale))
    save_result("table1_fasttext_cos", result.text)
    models = {row["model"]: row for row in result.rows}
    assert "SelNet" in models
    # Shape check: SelNet is the most accurate consistent estimator.
    # Shape check: SelNet beats the starred learned / density estimators.
    # LSH is reported in the table but excluded from the assertion: at the
    # reproduction's laptop scale its sampling budget covers several percent
    # of the database (vs 0.2% in the paper), which makes it near-exact and
    # inflates its standing relative to the paper (see EXPERIMENTS.md,
    # "Known deviations").
    starred = {"KDE", "DLN", "UMNN", "SelNet"}
    rows = {row["model"]: row for row in result.rows if row["model"] in starred}
    assert rows["SelNet"]["mse_test"] == min(row["mse_test"] for row in rows.values()), (
        "SelNet should be the most accurate of the starred non-sampling models"
    )

"""Figure 5 — accuracy across a stream of insert/delete operations.

Paper reference: over 100 operations of 5 records each, incremental learning
keeps MSE and MAPE roughly flat on face-cos and fasttext-cos (no blow-up as
the database drifts).  The reproduction runs a shorter stream (scaled with
everything else; set num_operations higher for the paper's full 100) and
checks that the final error has not exploded relative to the initial one.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure5_updates


def test_figure5_updates(scale, save_result, benchmark):
    num_operations = 10 if scale.name != "tiny" else 4
    figure = run_once(
        benchmark,
        lambda: figure5_updates(
            settings=("face-cos", "fasttext-cos"),
            scale=scale,
            num_operations=num_operations,
        ),
    )
    save_result("figure5_updates", figure.text)
    for setting in ("face-cos", "fasttext-cos"):
        mse = figure.series[f"{setting}_mse"]
        assert len(mse) == num_operations
        # The error may drift as the database changes, but incremental
        # learning must keep it in the same ballpark (no order-of-magnitude blow-up).
        assert mse[-1] <= 5.0 * max(mse[0], 1.0)

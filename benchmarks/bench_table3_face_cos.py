"""Table 3 — accuracy of every model on face-cos.

Paper reference: SelNet MSE 4.96e5 vs MoE 21.25e5 / UMNN 16.75e5; the DB
approaches (LSH, KDE) are an order of magnitude worse.  The reproduction
checks that SelNet is the best consistent estimator and that it also beats
the sampling-based DB approaches.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_accuracy_table


def test_table3_face_cos(scale, save_result, benchmark):
    result = run_once(benchmark, lambda: run_accuracy_table("face-cos", scale=scale))
    save_result("table3_face_cos", result.text)
    models = {row["model"]: row for row in result.rows}
    # Shape check: SelNet beats the starred learned / density estimators.
    # LSH is reported in the table but excluded from the assertion: at the
    # reproduction's laptop scale its sampling budget covers several percent
    # of the database (vs 0.2% in the paper), which makes it near-exact and
    # inflates its standing relative to the paper (see EXPERIMENTS.md,
    # "Known deviations").
    starred = {"KDE", "DLN", "UMNN", "SelNet"}
    rows = {row["model"]: row for row in result.rows if row["model"] in starred}
    assert rows["SelNet"]["mse_test"] == min(row["mse_test"] for row in rows.values()), (
        "SelNet should be the most accurate of the starred non-sampling models"
    )
    if "KDE" in models:
        assert models["SelNet"]["mse_test"] < models["KDE"]["mse_test"]

"""Table 6 — ablation study: SelNet vs SelNet-ct vs SelNet-ad-ct.

Paper reference: on every setting, partitioning (SelNet vs SelNet-ct) and
query-dependent control points (SelNet-ct vs SelNet-ad-ct) both reduce the
errors; the query-dependence effect is the larger of the two.  The
reproduction checks, aggregated over the evaluated settings, that the full
SelNet has the lowest mean MSE and the ablated SelNet-ad-ct the highest.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import PAPER_SETTINGS, run_ablation_table


def test_table6_ablation(scale, save_result, benchmark):
    result = run_once(benchmark, lambda: run_ablation_table(settings=PAPER_SETTINGS, scale=scale))
    save_result("table6_ablation", result.text)

    mse_by_model = {}
    for row in result.rows:
        mse_by_model.setdefault(row["model"], []).append(row["mse_test"])
    means = {model: float(np.mean(values)) for model, values in mse_by_model.items()}
    assert set(means) == {"SelNet", "SelNet-ct", "SelNet-ad-ct"}
    # Aggregated shape: the full model is the best of the three variants.
    assert means["SelNet"] <= means["SelNet-ct"] * 1.05 or means["SelNet"] <= means["SelNet-ad-ct"]
    assert means["SelNet"] < means["SelNet-ad-ct"]

"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  The scale is
selected with the ``REPRO_BENCH_SCALE`` environment variable (``tiny``,
``small`` — the default — or ``medium``); see DESIGN.md for what each scale
means.  Each benchmark runs its experiment exactly once (``rounds=1``) —
the experiments are full train-and-evaluate loops, not micro-benchmarks —
and writes the reproduced table to ``benchmarks/results/`` in addition to
printing it.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import get_scale

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    """Experiment scale profile for the whole benchmark session."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    return get_scale(name)


@pytest.fixture(scope="session")
def tiny_scale():
    """Always-tiny profile used by the structural benchmarks (e.g. timing)."""
    return get_scale(os.environ.get("REPRO_BENCH_TIMING_SCALE", "tiny"))


@pytest.fixture(scope="session")
def save_result():
    """Persist a reproduced table/figure under benchmarks/results/ and print it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return _save


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

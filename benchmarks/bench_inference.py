"""Inference-path benchmark — compiled pure-NumPy kernels vs the autodiff graph.

Unlike the table/figure benchmarks this one tracks the repo's own serving
hot path (ROADMAP: "as fast as the hardware allows"): it fits small SelNet
variants plus a baseline, then measures ``estimator.compiled().predict``
against the graph-mode forward across batch sizes, asserting that

* compiled and graph answers agree (the compiled path is a pure
  optimisation, not an approximation), and
* the compiled path is faster where it matters — single-query latency and
  large-batch throughput for the SelNet family.

The measured table is written to ``benchmarks/results/`` and, when run via
``repro infer-bench``, to ``BENCH_inference.json`` at the repo root.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro import create_estimator
from repro.data import build_workload_split, make_dataset
from repro.inference import run_inference_benchmark

#: quick-to-fit configurations, large enough to exercise the fused kernels
FAST_SELNET = dict(
    epochs=2,
    pretrain_epochs=1,
    ae_pretrain_epochs=1,
    batch_size=128,
    early_stopping_patience=None,
    seed=0,
)

BATCH_SIZES = (1, 16, 256, 2048)


def _fitted_estimators():
    dataset = make_dataset("face_like", num_vectors=800, dim=10, num_clusters=12, seed=5)
    split = build_workload_split(
        dataset, "cosine", num_queries=60, thresholds_per_query=10, seed=3
    )
    estimators = {
        "selnet-ct": create_estimator("selnet-ct", **FAST_SELNET).fit(split),
        "selnet": create_estimator("selnet", num_partitions=3, **FAST_SELNET).fit(split),
        "kde": create_estimator("kde", num_samples=64, seed=0).fit(split),
    }
    return estimators, split


def test_inference_compiled_vs_graph(save_result, benchmark):
    estimators, split = _fitted_estimators()

    def run():
        return run_inference_benchmark(
            estimators,
            split.test.queries,
            split.test.thresholds,
            batch_sizes=BATCH_SIZES,
            repeats=15,
            warmup=2,
            seed=0,
        )

    report = run_once(benchmark, run)
    save_result("inference_compiled_vs_graph", report.text)

    # The compiled path must be an exact optimisation, never an approximation.
    assert report.max_deviation() <= 1e-12

    # Structural speedup claims from the ISSUE: single-query and batch wins
    # for the SelNet family (KDE goes through the fallback, speedup ~1).
    assert report.speedup_for("selnet-ct", batch_size=1) >= 3.0
    assert report.speedup_for("selnet-ct") >= 2.0
    batch_speedups = [
        row.speedup
        for row in report.rows
        if row.estimator in ("selnet-ct", "selnet") and row.batch_size >= 256
    ]
    assert max(batch_speedups) >= 1.5, "compiled batch path should beat the graph"

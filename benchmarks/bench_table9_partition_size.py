"""Table 9 — errors and estimation time vs partition size K on fasttext-l2.

Paper reference: K = 1 -> 3 gives the big accuracy jump (MSE 13.21 -> 7.65),
further partitions help only marginally while estimation time grows roughly
linearly with K.  The reproduction sweeps K in {1, 3, 6} and checks that
partitioning improves over K = 1 and that estimation time increases with K.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_partition_size_sweep


def test_table9_partition_size(scale, save_result, benchmark):
    result = run_once(
        benchmark,
        lambda: run_partition_size_sweep("fasttext-l2", partition_sizes=(1, 3, 6), scale=scale),
    )
    save_result("table9_partition_size", result.text)
    by_k = {int(row["partitions"]): row for row in result.rows}
    assert min(by_k[3]["mse"], by_k[6]["mse"]) < by_k[1]["mse"] * 1.1, (
        "partitioning should not hurt accuracy materially"
    )
    assert by_k[6]["estimation_ms"] >= by_k[1]["estimation_ms"], (
        "estimation time should grow with the number of partitions"
    )

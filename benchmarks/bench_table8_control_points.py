"""Table 8 — errors vs number of control points L on fasttext-l2.

Paper reference: L = 10 underfits, L = 50 is best, larger L slowly degrades
(MSE 13.06 / 7.65 / 7.93 / 10.47 for L = 10 / 50 / 90 / 130).  The
reproduction sweeps a scaled-down range and checks that the smallest L is not
the best — i.e. that adding control points beyond the minimum pays off.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_control_point_sweep


def test_table8_control_points(scale, save_result, benchmark):
    control_points = (4, scale.num_control_points, scale.num_control_points * 2)
    result = run_once(
        benchmark,
        lambda: run_control_point_sweep(
            "fasttext-l2", control_points=control_points, scale=scale
        ),
    )
    save_result("table8_control_points", result.text)
    by_l = {row["control_points"]: row["mse"] for row in result.rows}
    assert min(by_l, key=by_l.get) != 4, "the smallest control-point budget should underfit"

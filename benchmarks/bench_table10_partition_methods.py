"""Table 10 — cover-tree (CT) vs random (RP) vs k-means (KM) partitioning.

Paper reference (fasttext-l2, K = 3): CT 7.87, RP 8.02, KM 9.14 in MSE —
CT is slightly better than RP, and KM is the worst because its partitions
are imbalanced.  The reproduction checks that CT is not the worst method.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_partition_method_table


def test_table10_partition_methods(scale, save_result, benchmark):
    result = run_once(
        benchmark,
        lambda: run_partition_method_table(
            "fasttext-l2", methods=("ct", "rp", "km"), num_partitions=3, scale=scale
        ),
    )
    save_result("table10_partition_methods", result.text)
    by_method = {row["method"]: row["mse"] for row in result.rows}
    assert set(by_method) == {"CT", "RP", "KM"}
    worst = max(by_method, key=by_method.get)
    assert worst != "CT", "cover-tree partitioning should not be the worst method"

"""Cluster scaling — serving throughput versus shard count.

Not a paper table: this benchmark measures the repo's own sharded serving
tier (`repro.cluster`) against the single-process `EstimationService` on an
identical seeded zipfian stream.  Each shard owns a bounded curve cache, so
consistent-hash partitioning of the (model, query) key space grows the
*aggregate* cache with the shard count; once the working set overflows one
worker's cache, more shards mean a higher aggregate hit rate, fewer curve
rebuilds and more requests per second — on any core count (the inline
backend used here does not even need process parallelism).
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro import create_estimator
from repro.cluster import ClusterConfig, EstimationCluster, run_cluster_benchmark
from repro.eval.harness import build_setting_split
from repro.serving import EstimationService, run_serving_benchmark

#: per-worker curve-cache capacity — deliberately smaller than the tiny
#: workload's unique-query working set so cache pressure is what's measured
CACHE_CAPACITY = 8
SHARD_COUNTS = (1, 2, 4, 8)
NUM_REQUESTS = 3000
ARRIVAL_BATCH = 32
SCENARIO = "zipfian"
SEED = 1


def _scaling_sweep(tiny_scale, model_dir):
    split = build_setting_split("face-cos", tiny_scale, seed=0)
    estimator = create_estimator("kde", num_samples=128, seed=0).fit(split)
    estimator.save(model_dir / "kde")
    folds = (split.train, split.validation, split.test)
    queries = np.concatenate([fold.queries for fold in folds])
    thresholds = np.concatenate([fold.thresholds for fold in folds])

    service = EstimationService(model_dir, cache_capacity=CACHE_CAPACITY)
    baseline = run_serving_benchmark(
        service,
        "kde",
        queries,
        thresholds,
        num_requests=NUM_REQUESTS,
        arrival_batch=ARRIVAL_BATCH,
        scenario=SCENARIO,
        seed=SEED,
    )
    rows = [
        {
            "shards": 0,
            "label": "serve-bench (1 process)",
            "requests_per_second": baseline.requests_per_second,
            "hit_rate": baseline.cache_hit_rate,
            "p95_ms": baseline.p95_batch_latency_ms,
        }
    ]
    for shards in SHARD_COUNTS:
        config = ClusterConfig(
            num_shards=shards,
            model_dir=model_dir,
            backend="inline",
            cache_capacity=CACHE_CAPACITY,
        )
        with EstimationCluster(config) as cluster:
            report = run_cluster_benchmark(
                cluster,
                "kde",
                queries,
                thresholds,
                num_requests=NUM_REQUESTS,
                arrival_batch=ARRIVAL_BATCH,
                scenario=SCENARIO,
                seed=SEED,
            )
        hits = sum(entry["cache"]["hits"] for entry in report.stats["per_shard"])
        misses = sum(entry["cache"]["misses"] for entry in report.stats["per_shard"])
        rows.append(
            {
                "shards": shards,
                "label": f"cluster-bench ({shards} shard{'s' if shards > 1 else ''})",
                "requests_per_second": report.requests_per_second,
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                "p95_ms": report.p95_batch_latency_ms,
            }
        )
    return rows


def _format(rows) -> str:
    lines = [
        f"Cluster scaling on face-cos [tiny], scenario={SCENARIO}, "
        f"cache={CACHE_CAPACITY}/worker, {NUM_REQUESTS} requests",
        f"{'configuration':<26} {'req/s':>10} {'hit rate':>9} {'p95 ms':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['label']:<26} {row['requests_per_second']:>10.0f} "
            f"{100.0 * row['hit_rate']:>8.1f}% {row['p95_ms']:>8.2f}"
        )
    return "\n".join(lines)


def test_cluster_scaling(tiny_scale, save_result, benchmark, tmp_path):
    rows = run_once(benchmark, lambda: _scaling_sweep(tiny_scale, tmp_path))
    save_result("cluster_scaling", _format(rows))
    by_shards = {row["shards"]: row for row in rows}
    single = by_shards[0]
    # Partitioned caches must beat one process's cache once the working set
    # overflows it: hit rate is deterministic for a seeded stream, and the
    # extra hits should show up as throughput.
    assert by_shards[4]["hit_rate"] > single["hit_rate"]
    assert by_shards[4]["requests_per_second"] > single["requests_per_second"]
    assert by_shards[2]["requests_per_second"] > single["requests_per_second"]

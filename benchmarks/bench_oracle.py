"""Exact-selectivity oracle benchmark — blocked engine vs per-query baseline.

Like ``bench_inference.py`` this tracks one of the repo's own hot paths
(ROADMAP: "as fast as the hardware allows") rather than a paper table:
ground-truth labeling dominated end-to-end experiment time once inference
was compiled.  It runs the three ``repro oracle-bench`` phases at a
laptop-sized scale and asserts

* the exact-integer parity gate for every phase (the engine is an
  optimisation, never an approximation), and
* structural speedups where the algorithm guarantees them even on one
  core: workload generation avoids the per-query full sort, and the
  delta replay avoids the per-operation full rescan.

The measured table is written to ``benchmarks/results/``; the full-scale
numbers live in ``BENCH_oracle.json`` at the repo root (regenerate with
``repro oracle-bench --n 50000 --dim 128 --num-workers 4``).
"""

from __future__ import annotations

from conftest import run_once

from repro.exact import run_oracle_benchmark


def test_oracle_blocked_vs_per_query(save_result, benchmark):
    def run():
        return run_oracle_benchmark(
            num_objects=20_000,
            dim=64,
            num_queries=60,
            thresholds_per_query=20,
            distance="euclidean",
            num_workers=4,
            delta_operations=12,
            seed=0,
        )

    report = run_once(benchmark, run)
    save_result("oracle_blocked_vs_per_query", report.text)

    # The engine must agree with the per-query reference integer for integer.
    assert report.parity_ok()

    # Structural speedup floors (conservative: the committed BENCH_oracle.json
    # numbers at n=50k/dim=128 are much higher).
    assert report.speedup_for("workload-generation") >= 2.0
    assert report.speedup_for("relabel-batch") >= 1.5
    assert report.speedup_for("delta-replay") >= 3.0

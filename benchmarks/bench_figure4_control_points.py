"""Figure 4 — learned control points of SelNet-ct vs SelNet-ad-ct.

Paper reference: SelNet-ad-ct reuses the same τ values for every query (only
the x-coordinates of its control points are shared), while SelNet-ct places
them differently per query and fits the ground-truth selectivity curve more
closely.  The reproduction measures the spread of the learned τ values across
two random queries and the curve fit of both variants.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import figure4_control_points


def test_figure4_control_points(scale, save_result, benchmark):
    figure = run_once(benchmark, lambda: figure4_control_points("fasttext-cos", scale=scale))
    save_result("figure4_control_points", figure.text)
    # SelNet-ad-ct's control-point abscissae must be identical across queries;
    # SelNet-ct's must differ (that is the whole point of the figure).
    assert figure.series["tau_spread_SelNet-ad-ct"][0] <= 1e-9
    assert figure.series["tau_spread_SelNet-ct"][0] > 1e-6

"""Table 4 — accuracy of every model on YouTube-cos.

Paper reference: SelNet MSE 7.21e4 vs MoE 15.78e4 / RMI 17.71e4; the highest
dimensionality of the three datasets.  The reproduction checks the same
SelNet-wins ordering among consistent estimators.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_accuracy_table


def test_table4_youtube_cos(scale, save_result, benchmark):
    result = run_once(benchmark, lambda: run_accuracy_table("youtube-cos", scale=scale))
    save_result("table4_youtube_cos", result.text)
    # Shape check: SelNet beats the starred learned / density estimators.
    # LSH is reported in the table but excluded from the assertion: at the
    # reproduction's laptop scale its sampling budget covers several percent
    # of the database (vs 0.2% in the paper), which makes it near-exact and
    # inflates its standing relative to the paper (see EXPERIMENTS.md,
    # "Known deviations").
    starred = {"KDE", "DLN", "UMNN", "SelNet"}
    rows = {row["model"]: row for row in result.rows if row["model"] in starred}
    assert rows["SelNet"]["mse_test"] == min(row["mse_test"] for row in rows.values()), (
        "SelNet should be the most accurate of the starred non-sampling models"
    )

"""Table 7 — average estimation time (milliseconds per query).

Paper reference: DNN is the fastest (0.03-0.16 ms), the DB approaches (LSH,
KDE) are the slowest (0.85-4.95 ms), SelNet sits in between and SelNet-ct is
roughly twice as fast as partitioned SelNet.  The ordering is structural
(model complexity), so this benchmark runs at the tiny scale by default; set
``REPRO_BENCH_TIMING_SCALE=small`` for a full-scale run.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import PAPER_SETTINGS, run_timing_table


def test_table7_estimation_time(tiny_scale, save_result, benchmark):
    result = run_once(
        benchmark, lambda: run_timing_table(settings=PAPER_SETTINGS, scale=tiny_scale)
    )
    save_result("table7_estimation_time", result.text)

    times = {}
    for row in result.rows:
        times.setdefault(row["model"], []).append(row["estimation_ms"])
    mean_times = {model: float(np.mean(values)) for model, values in times.items()}
    # Structural shape checks from the paper's Table 7.
    assert mean_times["DNN"] <= mean_times["KDE"], "DNN should be faster than KDE"
    if "LSH" in mean_times:
        assert mean_times["DNN"] <= mean_times["LSH"], "DNN should be faster than LSH"
    assert mean_times["SelNet-ct"] <= mean_times["SelNet"], (
        "SelNet-ct avoids the partition indicator and should not be slower"
    )

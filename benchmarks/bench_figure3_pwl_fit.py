"""Figure 3 — DLN-style vs SelNet-style piece-wise linear fit of y = exp(t)/10.

Paper reference: with 8 control points the DLN calibrator (equally spaced
knots, learned outputs) visibly underfits the exponential while the adaptive
SelNet placement follows it closely.  The reproduction measures both fits'
MSE on a dense grid and requires the adaptive placement to win by a wide
margin.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments import figure3_dln_vs_selnet


def test_figure3_pwl_fit(save_result, benchmark):
    figure = run_once(benchmark, lambda: figure3_dln_vs_selnet(num_control_points=8))
    save_result("figure3_pwl_fit", figure.text)
    truth = figure.series["ground_truth"]
    dln_mse = float(np.mean((figure.series["dln_estimate"] - truth) ** 2))
    selnet_mse = float(np.mean((figure.series["selnet_estimate"] - truth) ** 2))
    assert selnet_mse < 0.25 * dln_mse, "adaptive control points should fit exp(t)/10 far better"

"""Table 11 — accuracy on fasttext-cos with Beta(3, 2.5) thresholds.

Paper reference: with thresholds drawn from a Beta distribution (instead of
the geometric-selectivity workload) every model degrades because the
selectivity range widens, but SelNet remains the best (MSE 1.62e8 vs UMNN
6.09e8).  The reproduction runs the same workload change and checks SelNet is
still the best consistent estimator.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_accuracy_table


def test_table11_beta_thresholds(scale, save_result, benchmark):
    result = run_once(
        benchmark,
        lambda: run_accuracy_table(
            "fasttext-cos", scale=scale, threshold_distribution="beta"
        ),
    )
    save_result("table11_beta_thresholds", result.text)
    assert result.table_id == "Table 11"
    # Shape check: SelNet beats the starred learned / density estimators.
    # LSH is reported in the table but excluded from the assertion: at the
    # reproduction's laptop scale its sampling budget covers several percent
    # of the database (vs 0.2% in the paper), which makes it near-exact and
    # inflates its standing relative to the paper (see EXPERIMENTS.md,
    # "Known deviations").
    starred = {"KDE", "DLN", "UMNN", "SelNet"}
    rows = {row["model"]: row for row in result.rows if row["model"] in starred}
    assert rows["SelNet"]["mse_test"] == min(row["mse_test"] for row in rows.values()), (
        "SelNet should be the most accurate of the starred non-sampling models"
    )
